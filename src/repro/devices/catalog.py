"""The device catalog: the 11 IBMQ backends of the paper's Table I.

Each entry pairs the public Table I attributes (qubit count, processor
family, quantum volume, topology) with a noise profile, a drift profile and a
speed profile chosen so that the *relative* behaviour of the fleet matches
what the paper reports:

* ``ibmq_x2`` (fully-connected Canary) — fastest per job but by far the
  noisiest (high cross-talk), slowest to converge;
* ``ibmq_bogota`` / ``ibmq_manila`` (QV32 line) — among the cleanest 5-qubit
  devices;
* ``ibmq_casablanca`` — fast and initially clean but prone to long noise
  bursts after calibration (the Fig. 6 divergence);
* ``ibmq_toronto`` — decent fidelity but wildly fluctuating throughput;
* ``ibmq_santiago`` / ``ibm_manhattan`` — prohibitively slow (weeks/months per
  VQE run), the experiments the paper had to terminate.

Absolute values are simulator calibrations, not IBMQ measurements; see
DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..noise.drift import DriftProfile
from ..noise.generator import NoiseProfile
from .qpu import QPU, QPUSpec
from .topology import (
    fully_connected_topology,
    h_shape_topology,
    line_topology,
    manhattan_topology,
    t_shape_topology,
    toronto_topology,
)

__all__ = [
    "TABLE_I",
    "device_spec",
    "available_devices",
    "build_qpu",
    "build_fleet",
    "DEFAULT_VQE_FLEET",
    "DEFAULT_QAOA_FLEET",
]


def _spec(
    name: str,
    num_qubits: int,
    processor: str,
    quantum_volume: int,
    topology_factory,
    *,
    t1: float,
    t2: float,
    single_qubit_error: float,
    cx_error: float,
    readout_error: float,
    crosstalk: float,
    coherent_bias: float,
    base_job_seconds: float,
    drift: DriftProfile,
    seed: int,
) -> QPUSpec:
    topology = topology_factory()
    return QPUSpec(
        name=name,
        num_qubits=num_qubits,
        processor=processor,
        quantum_volume=quantum_volume,
        topology=topology,
        noise_profile=NoiseProfile(
            t1=t1,
            t2=t2,
            single_qubit_error=single_qubit_error,
            cx_error=cx_error,
            readout_error=readout_error,
            crosstalk=crosstalk,
            coherent_bias=coherent_bias,
        ),
        drift_profile=drift,
        base_job_seconds=base_job_seconds,
        seed=seed,
    )


_CALM_DRIFT = DriftProfile(
    drift_rate=0.015, oscillation_amplitude=0.05, burst_probability=0.05
)
_MODERATE_DRIFT = DriftProfile(
    drift_rate=0.03, oscillation_amplitude=0.10, burst_probability=0.15
)
_VOLATILE_DRIFT = DriftProfile(
    drift_rate=0.05,
    oscillation_amplitude=0.20,
    burst_probability=0.55,
    burst_magnitude=4.0,
    burst_duration_hours=8.0,
)
_THROUGHPUT_DRIFT = DriftProfile(
    drift_rate=0.04,
    oscillation_amplitude=0.35,
    burst_probability=0.6,
    burst_magnitude=8.0,
    burst_duration_hours=10.0,
)


#: Table I of the paper, keyed by the short device name used in the figures.
TABLE_I: Mapping[str, QPUSpec] = {
    "Lima": _spec(
        "Lima", 5, "Falcon r4T", 8, t_shape_topology,
        t1=90e-6, t2=85e-6, single_qubit_error=5e-4, cx_error=1.5e-2,
        readout_error=3.5e-2, crosstalk=0.004, coherent_bias=0.028,
        base_job_seconds=40.0, drift=_MODERATE_DRIFT, seed=101,
    ),
    "x2": _spec(
        "x2", 5, "Canary r1 (fully connected)", 8,
        lambda: fully_connected_topology(5, name="x2_full"),
        t1=55e-6, t2=45e-6, single_qubit_error=1.2e-3, cx_error=3.5e-2,
        readout_error=5.5e-2, crosstalk=0.02, coherent_bias=0.050,
        base_job_seconds=25.0, drift=_MODERATE_DRIFT, seed=102,
    ),
    "Belem": _spec(
        "Belem", 5, "Falcon r4T", 16, t_shape_topology,
        t1=95e-6, t2=100e-6, single_qubit_error=4e-4, cx_error=1.2e-2,
        readout_error=2.8e-2, crosstalk=0.004, coherent_bias=-0.022,
        base_job_seconds=30.0, drift=_CALM_DRIFT, seed=103,
    ),
    "Quito": _spec(
        "Quito", 5, "Falcon r4T", 16, t_shape_topology,
        t1=98e-6, t2=105e-6, single_qubit_error=3.5e-4, cx_error=1.0e-2,
        readout_error=2.5e-2, crosstalk=0.004, coherent_bias=0.018,
        base_job_seconds=35.0, drift=_CALM_DRIFT, seed=104,
    ),
    "Manila": _spec(
        "Manila", 5, "Falcon r5.11L", 32, lambda: line_topology(5, name="manila_line"),
        t1=120e-6, t2=80e-6, single_qubit_error=2.5e-4, cx_error=7e-3,
        readout_error=2.2e-2, crosstalk=0.002, coherent_bias=-0.016,
        base_job_seconds=38.0, drift=_CALM_DRIFT, seed=105,
    ),
    "Santiago": _spec(
        "Santiago", 5, "Falcon r4L", 16, lambda: line_topology(5, name="santiago_line"),
        t1=110e-6, t2=95e-6, single_qubit_error=3e-4, cx_error=8e-3,
        readout_error=2.0e-2, crosstalk=0.002, coherent_bias=0.020,
        base_job_seconds=450.0, drift=_MODERATE_DRIFT, seed=106,
    ),
    "Bogota": _spec(
        "Bogota", 5, "Falcon r4L", 32, lambda: line_topology(5, name="bogota_line"),
        t1=115e-6, t2=120e-6, single_qubit_error=2.5e-4, cx_error=7.5e-3,
        readout_error=2.0e-2, crosstalk=0.002, coherent_bias=-0.027,
        base_job_seconds=36.0, drift=_CALM_DRIFT, seed=107,
    ),
    "Lagos": _spec(
        "Lagos", 7, "Falcon r5.11H", 32, h_shape_topology,
        t1=130e-6, t2=110e-6, single_qubit_error=2.2e-4, cx_error=6.5e-3,
        readout_error=1.8e-2, crosstalk=0.003, coherent_bias=0.014,
        base_job_seconds=42.0, drift=_CALM_DRIFT, seed=108,
    ),
    "Casablanca": _spec(
        "Casablanca", 7, "Falcon r4H", 32, h_shape_topology,
        t1=105e-6, t2=90e-6, single_qubit_error=3.5e-4, cx_error=9e-3,
        readout_error=2.6e-2, crosstalk=0.003, coherent_bias=0.030,
        base_job_seconds=33.0, drift=_VOLATILE_DRIFT, seed=109,
    ),
    "Toronto": _spec(
        "Toronto", 27, "Falcon r4", 32, toronto_topology,
        t1=100e-6, t2=95e-6, single_qubit_error=3e-4, cx_error=1.1e-2,
        readout_error=3.0e-2, crosstalk=0.003, coherent_bias=-0.024,
        base_job_seconds=60.0, drift=_THROUGHPUT_DRIFT, seed=110,
    ),
    "Manhattan": _spec(
        "Manhattan", 65, "Falcon r4 (Hummingbird-scale)", 32, manhattan_topology,
        t1=95e-6, t2=90e-6, single_qubit_error=4e-4, cx_error=1.4e-2,
        readout_error=3.2e-2, crosstalk=0.003, coherent_bias=-0.030,
        base_job_seconds=4200.0, drift=_THROUGHPUT_DRIFT, seed=111,
    ),
}

#: The 10-device ensemble used for the VQE evaluation (Fig. 6).  Manhattan is
#: excluded from the default fleet because, as in the paper, its runs have to
#: be terminated; it is still available for the single-device baselines.
DEFAULT_VQE_FLEET: tuple[str, ...] = (
    "Lima", "x2", "Belem", "Quito", "Manila", "Santiago", "Bogota",
    "Lagos", "Casablanca", "Toronto",
)

#: The 8-device ensemble used for the QAOA evaluation (Fig. 11/12).
DEFAULT_QAOA_FLEET: tuple[str, ...] = (
    "Toronto", "Santiago", "Quito", "Lima", "Casablanca", "Bogota",
    "Manila", "Belem",
)


def available_devices() -> tuple[str, ...]:
    """The names of every catalogued device."""
    return tuple(TABLE_I.keys())


def device_spec(name: str) -> QPUSpec:
    """Look up one Table I entry by name (case-insensitive)."""
    for key, spec in TABLE_I.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError(
        f"unknown device {name!r}; available: {', '.join(TABLE_I)}"
    )


def build_qpu(name: str) -> QPU:
    """Instantiate a simulated QPU for one catalogued device."""
    return QPU(device_spec(name))


def build_fleet(names: Iterable[str] | None = None) -> list[QPU]:
    """Instantiate a list of QPUs (default: the 10-device VQE fleet)."""
    selected = tuple(names) if names is not None else DEFAULT_VQE_FLEET
    return [build_qpu(name) for name in selected]
