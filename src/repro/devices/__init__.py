"""Simulated quantum devices: topologies, QPU models, and the Table I catalog."""

from .catalog import (
    DEFAULT_QAOA_FLEET,
    DEFAULT_VQE_FLEET,
    TABLE_I,
    available_devices,
    build_fleet,
    build_qpu,
    device_spec,
)
from .qpu import QPU, CircuitFootprint, QPUSpec
from .topology import (
    Topology,
    fully_connected_topology,
    h_shape_topology,
    heavy_hex_topology,
    line_topology,
    manhattan_topology,
    t_shape_topology,
    toronto_topology,
)

__all__ = [
    "Topology",
    "line_topology",
    "t_shape_topology",
    "h_shape_topology",
    "fully_connected_topology",
    "heavy_hex_topology",
    "toronto_topology",
    "manhattan_topology",
    "QPU",
    "QPUSpec",
    "CircuitFootprint",
    "TABLE_I",
    "DEFAULT_VQE_FLEET",
    "DEFAULT_QAOA_FLEET",
    "available_devices",
    "device_spec",
    "build_qpu",
    "build_fleet",
]
