"""Device topologies (coupling maps).

The paper's devices span five topology families (Table I and Fig. 3): line,
T-shape, H-shape, fully-connected, and heavy-hex ("honeycomb") lattices.
Topology drives two things in EQC:

* the transpiler must route CNOTs through the coupling graph, inserting SWAPs
  whose cost shows up in the ``G2`` term of the ``PCorrect`` model;
* highly-connected devices (e.g. ``ibmq_x2``) suffer more cross-talk, which
  the device model applies as a latent error the estimator cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Sequence

import networkx as nx

__all__ = [
    "Topology",
    "line_topology",
    "t_shape_topology",
    "h_shape_topology",
    "fully_connected_topology",
    "heavy_hex_topology",
    "toronto_topology",
    "manhattan_topology",
]


@dataclass(frozen=True)
class Topology:
    """An undirected coupling map over ``num_qubits`` physical qubits."""

    name: str
    num_qubits: int
    edges: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise ValueError("a topology needs at least one qubit")
        normalized = []
        seen = set()
        for a, b in self.edges:
            a, b = int(a), int(b)
            if a == b:
                raise ValueError(f"self-loop on qubit {a}")
            if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
                raise ValueError(f"edge ({a}, {b}) out of range")
            key = (min(a, b), max(a, b))
            if key in seen:
                continue
            seen.add(key)
            normalized.append(key)
        object.__setattr__(self, "edges", tuple(sorted(normalized)))

    # ------------------------------------------------------------------
    @cached_property
    def graph(self) -> nx.Graph:
        """The coupling map as a networkx graph (cached)."""
        g = nx.Graph()
        g.add_nodes_from(range(self.num_qubits))
        g.add_edges_from(self.edges)
        return g

    @property
    def directed_couplings(self) -> tuple[tuple[int, int], ...]:
        """Both directions of every edge (calibration is per direction)."""
        out = []
        for a, b in self.edges:
            out.append((a, b))
            out.append((b, a))
        return tuple(out)

    def are_connected(self, a: int, b: int) -> bool:
        """True when qubits ``a`` and ``b`` share a physical coupling."""
        return (min(a, b), max(a, b)) in set(self.edges)

    def neighbors(self, qubit: int) -> tuple[int, ...]:
        return tuple(sorted(self.graph.neighbors(qubit)))

    def degree(self, qubit: int) -> int:
        return self.graph.degree[qubit]

    @cached_property
    def average_degree(self) -> float:
        if self.num_qubits == 0:
            return 0.0
        return 2.0 * len(self.edges) / self.num_qubits

    @cached_property
    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    def shortest_path(self, a: int, b: int) -> list[int]:
        """Shortest physical path between two qubits (inclusive)."""
        return nx.shortest_path(self.graph, a, b)

    def distance(self, a: int, b: int) -> int:
        """Shortest-path distance between two qubits."""
        return nx.shortest_path_length(self.graph, a, b)

    @cached_property
    def distance_matrix(self) -> dict[tuple[int, int], int]:
        """All-pairs shortest-path distances."""
        lengths = dict(nx.all_pairs_shortest_path_length(self.graph))
        return {
            (a, b): int(d)
            for a, targets in lengths.items()
            for b, d in targets.items()
        }

    def subgraph_connectivity(self, qubits: Sequence[int]) -> float:
        """Fraction of pairs among ``qubits`` that are directly coupled."""
        qubits = list(qubits)
        if len(qubits) < 2:
            return 1.0
        pairs = 0
        connected = 0
        for i, a in enumerate(qubits):
            for b in qubits[i + 1 :]:
                pairs += 1
                if self.are_connected(a, b):
                    connected += 1
        return connected / pairs


# ---------------------------------------------------------------------------
# factories for the paper's topology families
# ---------------------------------------------------------------------------

def line_topology(num_qubits: int, name: str | None = None) -> Topology:
    """A 1-D chain: the Manila / Santiago / Bogota layout."""
    edges = tuple((i, i + 1) for i in range(num_qubits - 1))
    return Topology(name or f"line_{num_qubits}", num_qubits, edges)


def t_shape_topology(name: str = "t_shape") -> Topology:
    """The 5-qubit Falcon r4T layout (Lima / Belem / Quito).

    Qubit 1 is the hub: ``0-1-2`` in a row with ``1-3-4`` hanging below.
    """
    return Topology(name, 5, ((0, 1), (1, 2), (1, 3), (3, 4)))


def h_shape_topology(name: str = "h_shape") -> Topology:
    """The 7-qubit Falcon H layout (Casablanca / Lagos)."""
    return Topology(name, 7, ((0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)))


def fully_connected_topology(num_qubits: int, name: str | None = None) -> Topology:
    """All-to-all coupling (the retired 5-qubit ``ibmq_x2`` / Yorktown style)."""
    edges = tuple(
        (a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)
    )
    return Topology(name or f"full_{num_qubits}", num_qubits, edges)


#: The published 27-qubit Falcon r4 heavy-hex coupling map (ibmq_toronto).
_TORONTO_EDGES: tuple[tuple[int, int], ...] = (
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7), (7, 10),
    (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15), (13, 14),
    (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20), (19, 22),
    (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
)


def toronto_topology(name: str = "toronto_heavy_hex") -> Topology:
    """The 27-qubit heavy-hex lattice of ibmq_toronto."""
    return Topology(name, 27, _TORONTO_EDGES)


def heavy_hex_topology(rows: int, row_length: int, name: str | None = None) -> Topology:
    """A generic heavy-hex style lattice used for large devices.

    Rows of ``row_length`` qubits are connected in chains; adjacent rows are
    stitched by sparse vertical bridges every third column, giving the
    brick-wall / honeycomb connectivity pattern of IBM's Falcon and Hummingbird
    processors (average degree a little above 2).
    """
    if rows < 1 or row_length < 2:
        raise ValueError("heavy-hex lattice needs rows >= 1 and row_length >= 2")
    edges: list[tuple[int, int]] = []
    def qubit(r: int, c: int) -> int:
        return r * row_length + c

    for r in range(rows):
        for c in range(row_length - 1):
            edges.append((qubit(r, c), qubit(r, c + 1)))
    for r in range(rows - 1):
        offset = 0 if r % 2 == 0 else 2
        for c in range(offset, row_length, 4):
            edges.append((qubit(r, c), qubit(r + 1, c)))
    num_qubits = rows * row_length
    return Topology(name or f"heavy_hex_{num_qubits}", num_qubits, tuple(edges))


def manhattan_topology(name: str = "manhattan_heavy_hex") -> Topology:
    """A 65-qubit heavy-hex approximation of ibm_manhattan.

    The exact published map is not needed for any EQC quantity — only the
    sparse-connectivity routing overhead matters — so we build a 5x13
    heavy-hex lattice of the same size and average degree.
    """
    return heavy_hex_topology(5, 13, name=name)
