"""Dense statevector simulation.

This is the ideal (noise-free) execution engine.  Circuits in this library
are small (4–5 qubits for every experiment in the paper), so a dense
``2**n`` complex vector with gate application via tensor reshaping is both
simple and fast.

Bit-ordering convention
-----------------------
Qubit 0 is the *most significant* bit of a basis-state label: for a 3-qubit
register the basis state ``|q0 q1 q2>`` with ``q0=1, q1=0, q2=1`` is the
string ``"101"`` and the amplitude index ``0b101 = 5``.  Measurement
bitstrings produced by the samplers follow the same convention.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import gate_matrix
from ..circuit.parameters import Parameter

__all__ = ["Statevector", "simulate_statevector"]


class Statevector:
    """A normalized pure state of ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, data: np.ndarray | None = None) -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        self.num_qubits = int(num_qubits)
        dim = 1 << self.num_qubits
        if data is None:
            vec = np.zeros(dim, dtype=complex)
            vec[0] = 1.0
        else:
            vec = np.asarray(data, dtype=complex).reshape(dim).copy()
            norm = np.linalg.norm(vec)
            if norm == 0:
                raise ValueError("statevector must not be the zero vector")
            vec = vec / norm
        self._vec = vec

    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The amplitude vector (copy)."""
        return self._vec.copy()

    @property
    def dim(self) -> int:
        return self._vec.size

    def copy(self) -> "Statevector":
        return Statevector(self.num_qubits, self._vec)

    # ------------------------------------------------------------------
    # gate application
    # ------------------------------------------------------------------
    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a unitary acting on ``qubits`` (in the given order) in place.

        The matrix is expressed in the basis ``|qubits[0] qubits[1] ...>``
        with ``qubits[0]`` the most significant bit of the local index.
        """
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError(
                f"matrix of shape {matrix.shape} does not act on {k} qubits"
            )
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"qubit {q} out of range")
        if len(set(qubits)) != k:
            raise ValueError("duplicate qubits in gate application")

        n = self.num_qubits
        # Reshape the state into an n-dimensional tensor, one axis per qubit;
        # axis i corresponds to qubit i because qubit 0 is most significant.
        tensor = self._vec.reshape([2] * n)
        # Move target axes to the front, in order.
        src = list(qubits)
        dest = list(range(k))
        tensor = np.moveaxis(tensor, src, dest)
        tensor = tensor.reshape(1 << k, -1)
        tensor = matrix @ tensor
        tensor = tensor.reshape([2] * k + [2] * (n - k))
        tensor = np.moveaxis(tensor, dest, src)
        self._vec = np.ascontiguousarray(tensor.reshape(-1))

    def apply_gate(self, name: str, qubits: Sequence[int], params: Sequence[float] = ()) -> None:
        """Apply a named gate (parameters must be bound floats)."""
        self.apply_matrix(gate_matrix(name, params), qubits)

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def probabilities(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Measurement probabilities over ``qubits`` (default: all, in order).

        The returned array has length ``2**len(qubits)`` and is indexed by
        the integer whose binary expansion is ``qubits[0] qubits[1] ...``
        (most significant first).
        """
        full = np.abs(self._vec) ** 2
        if qubits is None or tuple(qubits) == tuple(range(self.num_qubits)):
            return full
        qubits = list(qubits)
        n = self.num_qubits
        tensor = full.reshape([2] * n)
        keep = set(qubits)
        trace_axes = tuple(ax for ax in range(n) if ax not in keep)
        marg = tensor.sum(axis=trace_axes) if trace_axes else tensor
        # marg axes are the kept qubits in increasing index order; reorder to
        # follow the requested ordering.
        current = sorted(qubits)
        perm = [current.index(q) for q in qubits]
        marg = np.transpose(marg, perm)
        return marg.reshape(-1)

    def expectation_pauli(self, pauli_label: str) -> float:
        """Expectation value of a Pauli string such as ``"XZIY"``.

        The label's character ``i`` acts on qubit ``i``.  Identity positions
        may be written ``I``.
        """
        if len(pauli_label) != self.num_qubits:
            raise ValueError(
                f"Pauli label length {len(pauli_label)} does not match "
                f"{self.num_qubits} qubits"
            )
        single = {
            "I": np.eye(2, dtype=complex),
            "X": gate_matrix("x"),
            "Y": gate_matrix("y"),
            "Z": gate_matrix("z"),
        }
        vec = self._vec
        tensor = vec.reshape([2] * self.num_qubits)
        for qubit, label in enumerate(pauli_label.upper()):
            if label == "I":
                continue
            if label not in single:
                raise ValueError(f"invalid Pauli character {label!r}")
            mat = single[label]
            tensor = np.moveaxis(tensor, qubit, 0)
            shape = tensor.shape
            tensor = mat @ tensor.reshape(2, -1)
            tensor = tensor.reshape(shape)
            tensor = np.moveaxis(tensor, 0, qubit)
        transformed = tensor.reshape(-1)
        value = np.vdot(vec, transformed)
        return float(np.real(value))

    def fidelity(self, other: "Statevector") -> float:
        """Squared overlap ``|<self|other>|^2``."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("fidelity requires states of equal width")
        return float(np.abs(np.vdot(self._vec, other._vec)) ** 2)


def simulate_statevector(
    circuit: QuantumCircuit,
    parameter_values: Mapping[Parameter, float] | None = None,
) -> Statevector:
    """Run a circuit on the ideal statevector simulator.

    Measurement directives are ignored (the full final state is returned);
    use :mod:`repro.simulator.sampler` to draw shots from it.

    Args:
        circuit: the circuit to simulate.
        parameter_values: bindings for any free parameters.

    Raises:
        ValueError: if free parameters remain unbound.
    """
    bound = circuit if circuit.is_bound else circuit.bind_parameters(parameter_values or {})
    if not bound.is_bound:
        missing = ", ".join(p.name for p in bound.parameters)
        raise ValueError(f"unbound parameters remain: {missing}")
    state = Statevector(bound.num_qubits)
    for inst in bound:
        if not inst.is_unitary:
            continue
        params = tuple(float(p) for p in inst.params)
        state.apply_gate(inst.name, inst.qubits, params)
    return state
