"""Shot sampling from probability distributions and statevectors."""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from .result import Counts
from .statevector import Statevector, simulate_statevector

__all__ = [
    "sample_distribution",
    "sample_distribution_batch",
    "sample_statevector",
    "sample_circuit_ideal",
    "apply_readout_error",
    "apply_readout_error_batch",
    "distribution_to_counts",
]

#: Widths for which the full bitstring-label table is precomputed; wider
#: registers format labels on demand (the table would hold 2**n strings).
_MAX_CACHED_LABEL_BITS = 12


@lru_cache(maxsize=_MAX_CACHED_LABEL_BITS + 1)
def _bitstring_labels(num_bits: int) -> tuple[str, ...]:
    """All ``2**num_bits`` outcome labels, built once per register width."""
    return tuple(format(index, f"0{num_bits}b") for index in range(1 << num_bits))


def _counts_from_draws(draws: np.ndarray, num_bits: int, shots: int) -> Counts:
    """Sparse Counts from a multinomial draw vector (only hit outcomes)."""
    (hits,) = np.nonzero(draws)
    if num_bits <= _MAX_CACHED_LABEL_BITS:
        labels = _bitstring_labels(num_bits)
        data = {labels[index]: int(draws[index]) for index in hits}
    else:
        data = {
            format(index, f"0{num_bits}b"): int(draws[index]) for index in hits
        }
    return Counts._from_clean(data, shots)


def sample_distribution(
    probabilities: np.ndarray,
    shots: int,
    rng: np.random.Generator,
    num_bits: int | None = None,
) -> Counts:
    """Draw ``shots`` multinomial samples from a probability vector.

    Args:
        probabilities: vector of length ``2**num_bits``; it is re-normalized
            defensively (floating-point drift is common after noise mixing).
        shots: number of samples.
        rng: NumPy random generator (callers own seeding policy).
        num_bits: width of the output bitstrings; inferred from the vector
            length when omitted.
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1:
        raise ValueError("probabilities must be a 1-D vector")
    if np.any(probs < -1e-9):
        raise ValueError("probabilities must be non-negative")
    probs = np.clip(probs, 0.0, None)
    total = probs.sum()
    if total <= 0:
        raise ValueError("probability vector sums to zero")
    probs = probs / total
    if shots < 0:
        raise ValueError("shots must be non-negative")
    if num_bits is None:
        num_bits = max(1, int(np.round(np.log2(probs.size))))
    if probs.size != (1 << num_bits):
        raise ValueError(
            f"probability vector of length {probs.size} does not match "
            f"{num_bits} bits"
        )
    if shots == 0:
        return Counts({}, shots=0)
    draws = rng.multinomial(shots, probs)
    # Shots are sparse over the 2**n outcomes for n >= 10: only walk the hit
    # indices instead of enumerating the whole vector.
    return _counts_from_draws(draws, num_bits, shots)


def sample_distribution_batch(
    probabilities: np.ndarray,
    shots: int,
    rng: np.random.Generator,
    num_bits: int,
) -> list[Counts]:
    """Draw shots for a whole stack of distributions in one multinomial call.

    NumPy's ``Generator.multinomial`` consumes the bit stream row by row in
    order, so the draws — and the generator's final state — are **identical**
    to calling :func:`sample_distribution` once per row with the same RNG
    (the equivalence is pinned by the test suite).  The per-row validation
    and renormalization are replicated exactly; only the Python call
    overhead is batched away.

    Args:
        probabilities: ``(batch, 2**num_bits)`` stack of distributions.
        shots: shots per row (every row draws the same number).
        rng: the shared RNG stream, consumed in row order.
        num_bits: width of the output bitstrings.
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 2:
        raise ValueError("probabilities must be a (batch, 2**n) matrix")
    if np.any(probs < -1e-9):
        raise ValueError("probabilities must be non-negative")
    probs = np.clip(probs, 0.0, None)
    totals = probs.sum(axis=1)
    if np.any(totals <= 0):
        raise ValueError("probability vector sums to zero")
    probs = probs / totals[:, None]
    if shots < 0:
        raise ValueError("shots must be non-negative")
    if probs.shape[1] != (1 << num_bits):
        raise ValueError(
            f"probability vectors of length {probs.shape[1]} do not match "
            f"{num_bits} bits"
        )
    if shots == 0:
        return [Counts({}, shots=0) for _ in range(probs.shape[0])]
    draws = rng.multinomial(shots, probs)
    return [_counts_from_draws(row, num_bits, shots) for row in draws]


def sample_statevector(
    state: Statevector,
    shots: int,
    rng: np.random.Generator,
    qubits: Sequence[int] | None = None,
) -> Counts:
    """Sample measurement outcomes of (a subset of) a statevector."""
    qubits = list(qubits) if qubits is not None else list(range(state.num_qubits))
    probs = state.probabilities(qubits)
    return sample_distribution(probs, shots, rng, num_bits=len(qubits))


def sample_circuit_ideal(
    circuit: QuantumCircuit,
    shots: int,
    rng: np.random.Generator,
) -> Counts:
    """Simulate a bound circuit ideally and sample its measured qubits."""
    state = simulate_statevector(circuit)
    measured = circuit.measured_qubits or tuple(range(circuit.num_qubits))
    return sample_statevector(state, shots, rng, qubits=measured)


def apply_readout_error(
    probabilities: np.ndarray,
    confusion_matrices: Sequence[np.ndarray],
) -> np.ndarray:
    """Push a probability vector through per-qubit readout confusion matrices.

    Args:
        probabilities: length ``2**n`` vector over true outcomes.
        confusion_matrices: one 2x2 column-stochastic matrix per measured bit,
            ordered to match the bitstring convention (bit 0 first / most
            significant).

    Returns:
        The observed-outcome probability vector, same length.
    """
    probs = np.asarray(probabilities, dtype=float)
    n = len(confusion_matrices)
    if probs.size != (1 << n):
        raise ValueError("probability vector length does not match confusion matrices")
    tensor = probs.reshape([2] * n) if n else probs
    for bit, conf in enumerate(confusion_matrices):
        conf = np.asarray(conf, dtype=float)
        if conf.shape != (2, 2):
            raise ValueError("each confusion matrix must be 2x2")
        tensor = np.moveaxis(tensor, bit, 0)
        shape = tensor.shape
        tensor = conf @ tensor.reshape(2, -1)
        tensor = tensor.reshape(shape)
        tensor = np.moveaxis(tensor, 0, bit)
    out = tensor.reshape(-1)
    total = out.sum()
    return out / total if total > 0 else out


def apply_readout_error_batch(
    probabilities: np.ndarray,
    confusion_stacks: Sequence[np.ndarray],
) -> np.ndarray:
    """Push a stack of probability vectors through per-circuit confusion matrices.

    The batched counterpart of :func:`apply_readout_error`: row ``b`` of the
    result equals ``apply_readout_error(probabilities[b], [stack[b] for stack
    in confusion_stacks])`` — the per-bit contraction performs the identical
    2-term sums, so the two agree bitwise.

    Args:
        probabilities: ``(batch, 2**n)`` array of true-outcome distributions.
        confusion_stacks: one ``(batch, 2, 2)`` array per measured bit
            (bit 0 first / most significant), holding each circuit's own
            column-stochastic confusion matrix.  A plain ``(2, 2)`` matrix is
            broadcast over the batch.

    Returns:
        The ``(batch, 2**n)`` observed-outcome distributions, row-normalized.
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 2:
        raise ValueError("probabilities must be a (batch, 2**n) matrix")
    batch = probs.shape[0]
    n = len(confusion_stacks)
    if probs.shape[1] != (1 << n):
        raise ValueError("probability width does not match confusion matrices")
    if n == 0:
        return probs.copy()
    tensor = probs.reshape([batch] + [2] * n)
    for bit, stack in enumerate(confusion_stacks):
        stack = np.asarray(stack, dtype=float)
        if stack.shape == (2, 2):
            stack = np.broadcast_to(stack, (batch, 2, 2))
        if stack.shape != (batch, 2, 2):
            raise ValueError("each confusion stack must be (batch, 2, 2) or (2, 2)")
        tensor = np.moveaxis(tensor, bit + 1, 1)
        shape = tensor.shape
        # Stacked matmul runs the same 2-D GEMM per row the sequential path
        # runs per circuit, keeping the contraction bitwise identical.
        tensor = stack @ np.ascontiguousarray(tensor.reshape(batch, 2, -1))
        tensor = tensor.reshape(shape)
        tensor = np.moveaxis(tensor, 1, bit + 1)
    out = np.ascontiguousarray(tensor.reshape(batch, -1))
    totals = out.sum(axis=1)
    positive = totals > 0
    out[positive] /= totals[positive, None]
    return out


def distribution_to_counts(probabilities: np.ndarray, shots: int) -> Counts:
    """Deterministically round a distribution into integer counts.

    Used by tests and analytic baselines where sampling noise is unwanted.
    The largest remainders absorb the rounding difference so the counts sum
    exactly to ``shots``.
    """
    probs = np.asarray(probabilities, dtype=float)
    probs = np.clip(probs, 0.0, None)
    total = probs.sum()
    if total <= 0:
        raise ValueError("probability vector sums to zero")
    probs = probs / total
    raw = probs * shots
    floors = np.floor(raw).astype(int)
    remainder = shots - int(floors.sum())
    if remainder > 0:
        order = np.argsort(-(raw - floors))
        for index in order[:remainder]:
            floors[index] += 1
    num_bits = max(1, int(np.round(np.log2(probs.size))))
    data = {
        format(index, f"0{num_bits}b"): int(count)
        for index, count in enumerate(floors)
        if count
    }
    return Counts(data, shots=shots)
