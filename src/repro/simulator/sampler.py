"""Shot sampling from probability distributions and statevectors."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from .result import Counts
from .statevector import Statevector, simulate_statevector

__all__ = [
    "sample_distribution",
    "sample_statevector",
    "sample_circuit_ideal",
    "apply_readout_error",
    "distribution_to_counts",
]


def sample_distribution(
    probabilities: np.ndarray,
    shots: int,
    rng: np.random.Generator,
    num_bits: int | None = None,
) -> Counts:
    """Draw ``shots`` multinomial samples from a probability vector.

    Args:
        probabilities: vector of length ``2**num_bits``; it is re-normalized
            defensively (floating-point drift is common after noise mixing).
        shots: number of samples.
        rng: NumPy random generator (callers own seeding policy).
        num_bits: width of the output bitstrings; inferred from the vector
            length when omitted.
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1:
        raise ValueError("probabilities must be a 1-D vector")
    if np.any(probs < -1e-9):
        raise ValueError("probabilities must be non-negative")
    probs = np.clip(probs, 0.0, None)
    total = probs.sum()
    if total <= 0:
        raise ValueError("probability vector sums to zero")
    probs = probs / total
    if shots < 0:
        raise ValueError("shots must be non-negative")
    if num_bits is None:
        num_bits = max(1, int(np.round(np.log2(probs.size))))
    if probs.size != (1 << num_bits):
        raise ValueError(
            f"probability vector of length {probs.size} does not match "
            f"{num_bits} bits"
        )
    if shots == 0:
        return Counts({}, shots=0)
    draws = rng.multinomial(shots, probs)
    data = {
        format(index, f"0{num_bits}b"): int(count)
        for index, count in enumerate(draws)
        if count
    }
    return Counts(data, shots=shots)


def sample_statevector(
    state: Statevector,
    shots: int,
    rng: np.random.Generator,
    qubits: Sequence[int] | None = None,
) -> Counts:
    """Sample measurement outcomes of (a subset of) a statevector."""
    qubits = list(qubits) if qubits is not None else list(range(state.num_qubits))
    probs = state.probabilities(qubits)
    return sample_distribution(probs, shots, rng, num_bits=len(qubits))


def sample_circuit_ideal(
    circuit: QuantumCircuit,
    shots: int,
    rng: np.random.Generator,
) -> Counts:
    """Simulate a bound circuit ideally and sample its measured qubits."""
    state = simulate_statevector(circuit)
    measured = circuit.measured_qubits or tuple(range(circuit.num_qubits))
    return sample_statevector(state, shots, rng, qubits=measured)


def apply_readout_error(
    probabilities: np.ndarray,
    confusion_matrices: Sequence[np.ndarray],
) -> np.ndarray:
    """Push a probability vector through per-qubit readout confusion matrices.

    Args:
        probabilities: length ``2**n`` vector over true outcomes.
        confusion_matrices: one 2x2 column-stochastic matrix per measured bit,
            ordered to match the bitstring convention (bit 0 first / most
            significant).

    Returns:
        The observed-outcome probability vector, same length.
    """
    probs = np.asarray(probabilities, dtype=float)
    n = len(confusion_matrices)
    if probs.size != (1 << n):
        raise ValueError("probability vector length does not match confusion matrices")
    tensor = probs.reshape([2] * n) if n else probs
    for bit, conf in enumerate(confusion_matrices):
        conf = np.asarray(conf, dtype=float)
        if conf.shape != (2, 2):
            raise ValueError("each confusion matrix must be 2x2")
        tensor = np.moveaxis(tensor, bit, 0)
        shape = tensor.shape
        tensor = conf @ tensor.reshape(2, -1)
        tensor = tensor.reshape(shape)
        tensor = np.moveaxis(tensor, 0, bit)
    out = tensor.reshape(-1)
    total = out.sum()
    return out / total if total > 0 else out


def distribution_to_counts(probabilities: np.ndarray, shots: int) -> Counts:
    """Deterministically round a distribution into integer counts.

    Used by tests and analytic baselines where sampling noise is unwanted.
    The largest remainders absorb the rounding difference so the counts sum
    exactly to ``shots``.
    """
    probs = np.asarray(probabilities, dtype=float)
    probs = np.clip(probs, 0.0, None)
    total = probs.sum()
    if total <= 0:
        raise ValueError("probability vector sums to zero")
    probs = probs / total
    raw = probs * shots
    floors = np.floor(raw).astype(int)
    remainder = shots - int(floors.sum())
    if remainder > 0:
        order = np.argsort(-(raw - floors))
        for index in order[:remainder]:
            floors[index] += 1
    num_bits = max(1, int(np.round(np.log2(probs.size))))
    data = {
        format(index, f"0{num_bits}b"): int(count)
        for index, count in enumerate(floors)
        if count
    }
    return Counts(data, shots=shots)
