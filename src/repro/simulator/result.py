"""Execution results: measurement counts and metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

__all__ = ["Counts", "ExecutionResult"]


class Counts(Mapping[str, int]):
    """Measurement outcome histogram keyed by bitstring.

    Bitstrings follow the library convention: character ``i`` is the outcome
    of measured qubit ``i`` (qubit 0 leftmost).
    """

    def __init__(self, data: Mapping[str, int], shots: int | None = None) -> None:
        clean: dict[str, int] = {}
        for key, value in data.items():
            if value < 0:
                raise ValueError(f"negative count for outcome {key!r}")
            if value:
                clean[str(key)] = int(value)
        widths = {len(k) for k in clean}
        if len(widths) > 1:
            raise ValueError("all bitstrings in a Counts object must share one width")
        self._data = clean
        self._shots = int(shots) if shots is not None else sum(clean.values())
        if self._shots < sum(clean.values()):
            raise ValueError("shots is smaller than the sum of counts")

    @classmethod
    def _from_clean(cls, data: dict[str, int], shots: int) -> "Counts":
        """Trusted constructor for internal samplers.

        Skips the per-entry validation of ``__init__`` — callers guarantee
        string keys of one width and positive integer values (the multinomial
        samplers build exactly that), which keeps the per-circuit sampling
        hot path free of redundant re-validation.
        """
        counts = cls.__new__(cls)
        counts._data = data
        counts._shots = shots
        return counts

    # Mapping protocol -----------------------------------------------------
    def __getitem__(self, key: str) -> int:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"Counts({dict(sorted(self._data.items()))}, shots={self._shots})"

    # ----------------------------------------------------------------------
    @property
    def shots(self) -> int:
        """Total number of shots taken (may exceed the sum if some were lost)."""
        return self._shots

    @property
    def num_bits(self) -> int:
        """Width of the measured register (0 for an empty histogram)."""
        return len(next(iter(self._data))) if self._data else 0

    def probability(self, bitstring: str) -> float:
        """Empirical probability of one outcome."""
        if self._shots == 0:
            return 0.0
        return self._data.get(bitstring, 0) / self._shots

    def probabilities(self) -> dict[str, float]:
        """Empirical probabilities of every observed outcome."""
        if self._shots == 0:
            return {}
        return {k: v / self._shots for k, v in self._data.items()}

    def to_array(self) -> np.ndarray:
        """Dense probability vector of length ``2**num_bits``."""
        n = self.num_bits
        vec = np.zeros(1 << n if n else 1, dtype=float)
        for key, value in self._data.items():
            vec[int(key, 2)] = value
        total = vec.sum()
        return vec / total if total > 0 else vec

    def most_frequent(self) -> str:
        """The most frequent outcome (ties broken lexicographically)."""
        if not self._data:
            raise ValueError("empty Counts has no most frequent outcome")
        return min(self._data, key=lambda k: (-self._data[k], k))

    def merge(self, other: "Counts") -> "Counts":
        """Combine two histograms of the same width."""
        if self._data and other._data and self.num_bits != other.num_bits:
            raise ValueError("cannot merge Counts of different widths")
        merged = dict(self._data)
        for key, value in other._data.items():
            merged[key] = merged.get(key, 0) + value
        return Counts(merged, shots=self._shots + other._shots)


@dataclass
class ExecutionResult:
    """The full result of executing one circuit on a backend.

    Attributes:
        counts: measurement histogram.
        shots: number of shots requested.
        backend_name: device (or simulator) the job ran on.
        duration_seconds: simulated wall-clock execution time (queue excluded).
        queue_seconds: simulated time spent waiting in the device queue.
        metadata: free-form extras (calibration age, success probability, ...).
    """

    counts: Counts
    shots: int
    backend_name: str = "ideal"
    duration_seconds: float = 0.0
    queue_seconds: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Queueing plus execution time."""
        return self.duration_seconds + self.queue_seconds
