"""Quantum noise channels in Kraus form.

These channels model the three NISQ error classes the paper enumerates
(Section II-B):

* **Coherence error** — amplitude damping (T1 relaxation) and phase damping
  (T2 dephasing), parameterized by the gate duration relative to the decay
  constants.
* **Gate error** — depolarizing noise after each imperfect gate.
* **SPAM error** — readout confusion applied classically to sampled bits
  (see :func:`readout_confusion_matrix`).

Channels are used by the Monte-Carlo trajectory simulator
(:mod:`repro.simulator.trajectory`), which stochastically selects one Kraus
operator per channel application.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

__all__ = [
    "KrausChannel",
    "depolarizing_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "thermal_relaxation_channel",
    "bit_flip_channel",
    "two_qubit_depolarizing_channel",
    "readout_confusion_matrix",
]

_PAULI = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


@dataclass(frozen=True)
class KrausChannel:
    """A completely-positive trace-preserving map given by Kraus operators."""

    name: str
    operators: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        if not self.operators:
            raise ValueError("a channel needs at least one Kraus operator")
        dim = self.operators[0].shape[0]
        total = np.zeros((dim, dim), dtype=complex)
        for op in self.operators:
            if op.shape != (dim, dim):
                raise ValueError("all Kraus operators must share one square shape")
            total += op.conj().T @ op
        if not np.allclose(total, np.eye(dim), atol=1e-8):
            raise ValueError(f"channel {self.name!r} is not trace preserving")

    @property
    def num_qubits(self) -> int:
        return int(round(math.log2(self.operators[0].shape[0])))

    def is_identity(self, atol: float = 1e-12) -> bool:
        """True when the channel is (numerically) the identity map."""
        if len(self.operators) != 1:
            return False
        op = self.operators[0]
        return np.allclose(op, np.eye(op.shape[0]), atol=atol)


def _drop_zero_operators(ops) -> tuple[np.ndarray, ...]:
    """Remove numerically-zero Kraus operators (keeps trajectory sampling cheap
    and makes zero-probability channels recognizable as the identity)."""
    kept = tuple(op for op in ops if np.linalg.norm(op) > 1e-14)
    return kept if kept else tuple(ops[:1])


def depolarizing_channel(probability: float) -> KrausChannel:
    """Single-qubit depolarizing channel with error probability ``probability``.

    With probability ``p`` one of X, Y, Z is applied uniformly at random.
    """
    p = _check_probability(probability)
    ops = (
        math.sqrt(1.0 - p) * _PAULI["I"],
        math.sqrt(p / 3.0) * _PAULI["X"],
        math.sqrt(p / 3.0) * _PAULI["Y"],
        math.sqrt(p / 3.0) * _PAULI["Z"],
    )
    return KrausChannel("depolarizing", _drop_zero_operators(ops))


def two_qubit_depolarizing_channel(probability: float) -> KrausChannel:
    """Two-qubit depolarizing channel (uniform over the 15 non-identity Paulis)."""
    p = _check_probability(probability)
    labels = [a + b for a in "IXYZ" for b in "IXYZ"]
    ops = []
    for label in labels:
        mat = np.kron(_PAULI[label[0]], _PAULI[label[1]])
        if label == "II":
            ops.append(math.sqrt(1.0 - p) * mat)
        else:
            ops.append(math.sqrt(p / 15.0) * mat)
    return KrausChannel("depolarizing2q", _drop_zero_operators(ops))


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """T1 relaxation: |1> decays to |0> with probability ``gamma``."""
    g = _check_probability(gamma)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - g)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(g)], [0, 0]], dtype=complex)
    return KrausChannel("amplitude_damping", _drop_zero_operators((k0, k1)))


def phase_damping_channel(lam: float) -> KrausChannel:
    """Pure dephasing: off-diagonal coherence shrinks by ``sqrt(1 - lam)``."""
    p = _check_probability(lam)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - p)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(p)]], dtype=complex)
    return KrausChannel("phase_damping", _drop_zero_operators((k0, k1)))


def bit_flip_channel(probability: float) -> KrausChannel:
    """Classical-style bit flip with probability ``probability``."""
    p = _check_probability(probability)
    k0 = math.sqrt(1 - p) * _PAULI["I"]
    k1 = math.sqrt(p) * _PAULI["X"]
    return KrausChannel("bit_flip", _drop_zero_operators((k0, k1)))


def thermal_relaxation_channel(t1: float, t2: float, duration: float) -> KrausChannel:
    """Combined T1/T2 decay over a gate of length ``duration``.

    Follows the standard composition of amplitude damping with probability
    ``1 - exp(-t/T1)`` and extra pure dephasing so the total coherence decay
    matches ``exp(-t/T2)``.  Requires ``T2 <= 2 * T1`` (physical constraint).

    Args:
        t1: relaxation constant, in the same time unit as ``duration``.
        t2: dephasing constant, same unit.
        duration: gate/idle duration, same unit.
    """
    if t1 <= 0 or t2 <= 0:
        raise ValueError("T1 and T2 must be positive")
    if t2 > 2 * t1 + 1e-12:
        raise ValueError("unphysical calibration: T2 must not exceed 2*T1")
    if duration < 0:
        raise ValueError("duration must be non-negative")
    gamma = 1.0 - math.exp(-duration / t1)
    # Total off-diagonal decay must be exp(-t/T2); amplitude damping already
    # contributes sqrt(1-gamma) = exp(-t/2T1).  The residual goes to pure
    # dephasing.
    total_coherence = math.exp(-duration / t2)
    from_t1 = math.exp(-duration / (2.0 * t1))
    residual = min(1.0, total_coherence / from_t1) if from_t1 > 0 else 0.0
    lam = max(0.0, 1.0 - residual ** 2)

    amp = amplitude_damping_channel(gamma)
    deph = phase_damping_channel(lam)
    # Compose the two channels: Kraus set of the composition is all products.
    ops = tuple(
        d @ a for a in amp.operators for d in deph.operators
    )
    # Drop numerically-zero operators to keep trajectory sampling cheap.
    ops = tuple(op for op in ops if np.linalg.norm(op) > 1e-14)
    return KrausChannel("thermal_relaxation", ops)


def readout_confusion_matrix(p01: float, p10: float) -> np.ndarray:
    """Per-qubit readout confusion matrix.

    ``p01`` is the probability of reading 1 when the state was 0 and ``p10``
    the probability of reading 0 when the state was 1.  The returned 2x2
    matrix ``C`` maps true probabilities to observed probabilities via
    ``observed = C @ true`` with rows indexed by the observed bit.

    Matrices are memoized per ``(p01, p10)`` — the trajectory simulator asks
    for the same pair once per measured qubit per run, and the mixing path
    once per circuit — and returned as **shared read-only** arrays; copy
    before mutating.
    """
    return _cached_confusion_matrix(_check_probability(p01), _check_probability(p10))


@lru_cache(maxsize=4096)
def _cached_confusion_matrix(p01: float, p10: float) -> np.ndarray:
    matrix = np.array([[1 - p01, p10], [p01, 1 - p10]], dtype=float)
    matrix.flags.writeable = False
    return matrix


def _check_probability(p: float) -> float:
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability {p} outside [0, 1]")
    return p
