"""Monte-Carlo trajectory simulation of noisy circuits.

Each trajectory propagates a pure statevector through the circuit; after each
gate, one Kraus operator of the relevant error channel is applied, selected
stochastically with the Born-rule weights.  Averaging over many trajectories
converges to the density-matrix evolution without ever materializing a
``4**n`` density matrix.

This simulator is exact but comparatively slow; the large EQC experiments use
the analytic :mod:`repro.simulator.mixing` executor instead and reserve the
trajectory engine for validation (the two agree on small circuits — see
``tests/test_simulator/test_trajectory.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from .channels import (
    KrausChannel,
    depolarizing_channel,
    readout_confusion_matrix,
    thermal_relaxation_channel,
    two_qubit_depolarizing_channel,
)
from .result import Counts
from .sampler import apply_readout_error, sample_distribution
from .statevector import Statevector

__all__ = ["TrajectoryNoiseSpec", "MonteCarloSimulator"]


@dataclass(frozen=True)
class TrajectoryNoiseSpec:
    """Gate-level noise parameters consumed by the trajectory simulator.

    All durations are in seconds and decay constants in seconds; error rates
    are probabilities per gate application.

    Attributes:
        single_qubit_error: depolarizing probability after each 1-qubit gate.
        two_qubit_error: depolarizing probability after each 2-qubit gate.
        t1: relaxation time constant (seconds).
        t2: dephasing time constant (seconds).
        single_qubit_gate_time: duration of a 1-qubit gate (seconds).
        two_qubit_gate_time: duration of a 2-qubit gate (seconds).
        readout_p01: probability of reading 1 when the qubit was 0.
        readout_p10: probability of reading 0 when the qubit was 1.
    """

    single_qubit_error: float = 0.001
    two_qubit_error: float = 0.02
    t1: float = 100e-6
    t2: float = 80e-6
    single_qubit_gate_time: float = 35e-9
    two_qubit_gate_time: float = 300e-9
    readout_p01: float = 0.02
    readout_p10: float = 0.02

    def __post_init__(self) -> None:
        for name in ("single_qubit_error", "two_qubit_error", "readout_p01", "readout_p10"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        if self.t1 <= 0 or self.t2 <= 0:
            raise ValueError("T1 and T2 must be positive")
        if self.t2 > 2 * self.t1 + 1e-15:
            raise ValueError("unphysical spec: T2 must not exceed 2*T1")


@dataclass
class _ChannelCache:
    """Pre-built channels for one noise spec (avoids rebuilding per gate)."""

    depol_1q: KrausChannel
    depol_2q: KrausChannel
    relax_1q: KrausChannel
    relax_2q: KrausChannel
    readout: list[np.ndarray] = field(default_factory=list)


class MonteCarloSimulator:
    """Noisy circuit execution by stochastic Kraus-operator trajectories."""

    def __init__(self, noise: TrajectoryNoiseSpec, seed: int | None = None) -> None:
        self.noise = noise
        self._rng = np.random.default_rng(seed)
        self._cache = _ChannelCache(
            depol_1q=depolarizing_channel(noise.single_qubit_error),
            depol_2q=two_qubit_depolarizing_channel(noise.two_qubit_error),
            relax_1q=thermal_relaxation_channel(
                noise.t1, noise.t2, noise.single_qubit_gate_time
            ),
            relax_2q=thermal_relaxation_channel(
                noise.t1, noise.t2, noise.two_qubit_gate_time
            ),
        )

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        trajectories: int = 64,
    ) -> Counts:
        """Execute a bound circuit and return noisy measurement counts.

        Args:
            circuit: fully-bound circuit (measurements define readout qubits).
            shots: total measurement shots, split evenly over trajectories.
            trajectories: number of independent stochastic trajectories.
        """
        if not circuit.is_bound:
            raise ValueError("circuit has unbound parameters")
        if shots < 1:
            raise ValueError("shots must be >= 1")
        trajectories = max(1, min(int(trajectories), shots))
        measured = circuit.measured_qubits or tuple(range(circuit.num_qubits))
        confusions = [
            readout_confusion_matrix(self.noise.readout_p01, self.noise.readout_p10)
            for _ in measured
        ]
        shots_per_traj = [shots // trajectories] * trajectories
        for index in range(shots % trajectories):
            shots_per_traj[index] += 1

        merged = Counts({}, shots=0)
        for traj_shots in shots_per_traj:
            if traj_shots == 0:
                continue
            state = self._run_single_trajectory(circuit)
            probs = state.probabilities(list(measured))
            probs = apply_readout_error(probs, confusions)
            counts = sample_distribution(probs, traj_shots, self._rng, num_bits=len(measured))
            merged = merged.merge(counts)
        return merged

    def average_probabilities(
        self, circuit: QuantumCircuit, trajectories: int = 128
    ) -> np.ndarray:
        """Trajectory-averaged outcome distribution over the measured qubits."""
        if not circuit.is_bound:
            raise ValueError("circuit has unbound parameters")
        measured = circuit.measured_qubits or tuple(range(circuit.num_qubits))
        confusions = [
            readout_confusion_matrix(self.noise.readout_p01, self.noise.readout_p10)
            for _ in measured
        ]
        acc = np.zeros(1 << len(measured), dtype=float)
        for _ in range(max(1, trajectories)):
            state = self._run_single_trajectory(circuit)
            probs = state.probabilities(list(measured))
            acc += apply_readout_error(probs, confusions)
        return acc / max(1, trajectories)

    # ------------------------------------------------------------------
    def _run_single_trajectory(self, circuit: QuantumCircuit) -> Statevector:
        state = Statevector(circuit.num_qubits)
        for inst in circuit:
            if not inst.is_unitary:
                continue
            params = tuple(float(p) for p in inst.params)
            state.apply_gate(inst.name, inst.qubits, params)
            if len(inst.qubits) == 1:
                self._apply_channel(state, self._cache.depol_1q, inst.qubits)
                self._apply_channel(state, self._cache.relax_1q, inst.qubits)
            else:
                self._apply_channel(state, self._cache.depol_2q, inst.qubits)
                for qubit in inst.qubits:
                    self._apply_channel(state, self._cache.relax_2q, (qubit,))
        return state

    def _apply_channel(
        self, state: Statevector, channel: KrausChannel, qubits: Sequence[int]
    ) -> None:
        """Stochastically apply one Kraus operator of ``channel`` in place."""
        if channel.is_identity():
            return
        if channel.num_qubits != len(qubits):
            raise ValueError("channel arity does not match target qubits")
        vec = state.data
        # Compute Born weights <psi|K^dag K|psi> for each operator by applying
        # K to the raw amplitude vector; pick one operator and renormalize.
        weights = []
        candidates = []
        for op in channel.operators:
            amp = _apply_matrix_raw(vec, op, qubits, state.num_qubits)
            norm_sq = float(np.real(np.vdot(amp, amp)))
            weights.append(norm_sq)
            candidates.append(amp)
        weights_arr = np.asarray(weights, dtype=float)
        total = weights_arr.sum()
        if total <= 0:
            return
        weights_arr = weights_arr / total
        choice = self._rng.choice(len(candidates), p=weights_arr)
        chosen = candidates[choice]
        norm = np.linalg.norm(chosen)
        state._vec = chosen / norm  # noqa: SLF001 - internal fast path


def _apply_matrix_raw(
    vec: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a (possibly non-unitary) matrix to an amplitude vector."""
    k = len(qubits)
    tensor = vec.reshape([2] * num_qubits)
    tensor = np.moveaxis(tensor, list(qubits), list(range(k)))
    tensor = tensor.reshape(1 << k, -1)
    tensor = matrix @ tensor
    tensor = tensor.reshape([2] * k + [2] * (num_qubits - k))
    tensor = np.moveaxis(tensor, list(range(k)), list(qubits))
    return np.ascontiguousarray(tensor.reshape(-1))
