"""Monte-Carlo trajectory simulation of noisy circuits — vectorized.

Each trajectory propagates a pure statevector through the circuit; after each
gate, one Kraus operator of the relevant error channel is applied, selected
stochastically with the Born-rule weights.  Averaging over many trajectories
converges to the density-matrix evolution without ever materializing a
``4**n`` density matrix.

The engine is built around a ``(trajectories, 2**n)`` state matrix: **all**
trajectories advance through each gate together (one broadcast matmul per
gate instead of one per gate per trajectory), and Kraus selection is
vectorized — Born weights for every trajectory and every operator come from
one quadratic-form contraction against the precomputed ``K^dag K`` stack,
one uniform draw per trajectory picks the operators, and each selected
operator is applied to its group of trajectories in a single pass.  This
turned the validation engine from minutes into seconds, which is what makes
trajectory-vs-mixing agreement checks viable at experiment scale (see
``benchmarks/bench_noisy_batch.py``).

A per-trajectory sequential path is retained as the benchmark baseline and
statistical cross-check (:meth:`MonteCarloSimulator.average_probabilities_sequential`),
and :func:`density_matrix_probabilities` computes the *exact* noisy
distribution by evolving the density matrix — the ground truth the batched
trajectories are tested against.

This simulator is exact but comparatively slow; the large EQC experiments use
the analytic :mod:`repro.simulator.mixing` executor instead and reserve the
trajectory engine for validation (the two agree on small circuits — see
``tests/test_simulator/test_trajectory.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import gate_matrix
from ..engine import marginal_distribution, marginal_probabilities
from .channels import (
    KrausChannel,
    depolarizing_channel,
    readout_confusion_matrix,
    thermal_relaxation_channel,
    two_qubit_depolarizing_channel,
)
from .result import Counts
from .sampler import apply_readout_error, apply_readout_error_batch, sample_distribution
from .statevector import Statevector

__all__ = [
    "TrajectoryNoiseSpec",
    "MonteCarloSimulator",
    "density_matrix_probabilities",
]


@dataclass(frozen=True)
class TrajectoryNoiseSpec:
    """Gate-level noise parameters consumed by the trajectory simulator.

    All durations are in seconds and decay constants in seconds; error rates
    are probabilities per gate application.

    Attributes:
        single_qubit_error: depolarizing probability after each 1-qubit gate.
        two_qubit_error: depolarizing probability after each 2-qubit gate.
        t1: relaxation time constant (seconds).
        t2: dephasing time constant (seconds).
        single_qubit_gate_time: duration of a 1-qubit gate (seconds).
        two_qubit_gate_time: duration of a 2-qubit gate (seconds).
        readout_p01: probability of reading 1 when the qubit was 0.
        readout_p10: probability of reading 0 when the qubit was 1.
    """

    single_qubit_error: float = 0.001
    two_qubit_error: float = 0.02
    t1: float = 100e-6
    t2: float = 80e-6
    single_qubit_gate_time: float = 35e-9
    two_qubit_gate_time: float = 300e-9
    readout_p01: float = 0.02
    readout_p10: float = 0.02

    def __post_init__(self) -> None:
        for name in ("single_qubit_error", "two_qubit_error", "readout_p01", "readout_p10"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        if self.t1 <= 0 or self.t2 <= 0:
            raise ValueError("T1 and T2 must be positive")
        if self.t2 > 2 * self.t1 + 1e-15:
            raise ValueError("unphysical spec: T2 must not exceed 2*T1")


@dataclass
class _ChannelCache:
    """Pre-built channels for one noise spec (avoids rebuilding per gate)."""

    depol_1q: KrausChannel
    depol_2q: KrausChannel
    relax_1q: KrausChannel
    relax_2q: KrausChannel
    #: Per-channel stack of ``K^dag K`` matrices, keyed by channel identity —
    #: the quadratic forms that give Born weights without building candidate
    #: states.
    weight_ops: dict[int, np.ndarray] = field(default_factory=dict)


class MonteCarloSimulator:
    """Noisy circuit execution by stochastic Kraus-operator trajectories."""

    def __init__(self, noise: TrajectoryNoiseSpec, seed: int | None = None) -> None:
        self.noise = noise
        self._rng = np.random.default_rng(seed)
        self._cache = _ChannelCache(
            depol_1q=depolarizing_channel(noise.single_qubit_error),
            depol_2q=two_qubit_depolarizing_channel(noise.two_qubit_error),
            relax_1q=thermal_relaxation_channel(
                noise.t1, noise.t2, noise.single_qubit_gate_time
            ),
            relax_2q=thermal_relaxation_channel(
                noise.t1, noise.t2, noise.two_qubit_gate_time
            ),
        )

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        trajectories: int = 64,
    ) -> Counts:
        """Execute a bound circuit and return noisy measurement counts.

        All trajectories advance together as one state matrix; shots are then
        sampled per trajectory, in trajectory order, from the simulator's RNG.

        Args:
            circuit: fully-bound circuit (measurements define readout qubits).
            shots: total measurement shots, split evenly over trajectories.
            trajectories: number of independent stochastic trajectories.
        """
        if not circuit.is_bound:
            raise ValueError("circuit has unbound parameters")
        if shots < 1:
            raise ValueError("shots must be >= 1")
        trajectories = max(1, min(int(trajectories), shots))
        measured = circuit.measured_qubits or tuple(range(circuit.num_qubits))
        shots_per_traj = [shots // trajectories] * trajectories
        for index in range(shots % trajectories):
            shots_per_traj[index] += 1

        probs = self._readout_probabilities(circuit, trajectories, measured)
        merged = Counts({}, shots=0)
        for row, traj_shots in enumerate(shots_per_traj):
            if traj_shots == 0:
                continue
            counts = sample_distribution(
                probs[row], traj_shots, self._rng, num_bits=len(measured)
            )
            merged = merged.merge(counts)
        return merged

    def average_probabilities(
        self, circuit: QuantumCircuit, trajectories: int = 128
    ) -> np.ndarray:
        """Trajectory-averaged outcome distribution over the measured qubits."""
        if not circuit.is_bound:
            raise ValueError("circuit has unbound parameters")
        trajectories = max(1, int(trajectories))
        measured = circuit.measured_qubits or tuple(range(circuit.num_qubits))
        probs = self._readout_probabilities(circuit, trajectories, measured)
        return probs.mean(axis=0)

    def average_probabilities_sequential(
        self, circuit: QuantumCircuit, trajectories: int = 128
    ) -> np.ndarray:
        """One-trajectory-at-a-time reference for the batched engine.

        Retained as the benchmark baseline (``bench_noisy_batch.py``) and as
        an independent statistical cross-check: it shares no vectorized code
        with :meth:`average_probabilities`, only the channel definitions.
        """
        if not circuit.is_bound:
            raise ValueError("circuit has unbound parameters")
        measured = circuit.measured_qubits or tuple(range(circuit.num_qubits))
        confusions = [
            readout_confusion_matrix(self.noise.readout_p01, self.noise.readout_p10)
            for _ in measured
        ]
        acc = np.zeros(1 << len(measured), dtype=float)
        for _ in range(max(1, trajectories)):
            state = self._run_single_trajectory(circuit)
            probs = state.probabilities(list(measured))
            acc += apply_readout_error(probs, confusions)
        return acc / max(1, trajectories)

    def trajectory_states(
        self, circuit: QuantumCircuit, trajectories: int
    ) -> np.ndarray:
        """The ``(trajectories, 2**n)`` matrix of final trajectory states."""
        if not circuit.is_bound:
            raise ValueError("circuit has unbound parameters")
        return self._run_trajectory_batch(circuit, max(1, int(trajectories)))

    # ------------------------------------------------------------------
    # batched engine
    # ------------------------------------------------------------------
    def _readout_probabilities(
        self,
        circuit: QuantumCircuit,
        trajectories: int,
        measured: Sequence[int],
    ) -> np.ndarray:
        """Per-trajectory measured-register distributions incl. SPAM error."""
        states = self._run_trajectory_batch(circuit, trajectories)
        probs = marginal_probabilities(states, list(measured), circuit.num_qubits)
        if self.noise.readout_p01 == 0.0 and self.noise.readout_p10 == 0.0:
            return probs
        confusion = readout_confusion_matrix(
            self.noise.readout_p01, self.noise.readout_p10
        )
        return apply_readout_error_batch(probs, [confusion] * len(measured))

    def _run_trajectory_batch(
        self, circuit: QuantumCircuit, trajectories: int
    ) -> np.ndarray:
        n = circuit.num_qubits
        states = np.zeros((trajectories, 1 << n), dtype=complex)
        states[:, 0] = 1.0
        cache = self._cache
        for inst in circuit:
            if not inst.is_unitary:
                continue
            params = tuple(float(p) for p in inst.params)
            matrix = gate_matrix(inst.name, params)
            states = _apply_matrix_batch(states, matrix, inst.qubits, n)
            if len(inst.qubits) == 1:
                states = self._apply_channel_batch(states, cache.depol_1q, inst.qubits, n)
                states = self._apply_channel_batch(states, cache.relax_1q, inst.qubits, n)
            else:
                states = self._apply_channel_batch(states, cache.depol_2q, inst.qubits, n)
                for qubit in inst.qubits:
                    states = self._apply_channel_batch(states, cache.relax_2q, (qubit,), n)
        return states

    def _weight_ops(self, channel: KrausChannel) -> np.ndarray:
        """The channel's stacked ``K^dag K`` matrices, built once."""
        key = id(channel)
        stack = self._cache.weight_ops.get(key)
        if stack is None:
            stack = np.stack([op.conj().T @ op for op in channel.operators])
            self._cache.weight_ops[key] = stack
        return stack

    def _apply_channel_batch(
        self,
        states: np.ndarray,
        channel: KrausChannel,
        qubits: Sequence[int],
        num_qubits: int,
    ) -> np.ndarray:
        """Stochastically apply one Kraus operator per trajectory, vectorized.

        Born weights for every (trajectory, operator) pair come from one
        contraction against the ``K^dag K`` stack — no candidate states are
        materialized — then a single uniform draw per trajectory selects the
        operators and each selected operator is applied to its group of rows
        in one pass.
        """
        if channel.is_identity():
            return states
        k = channel.num_qubits
        if k != len(qubits):
            raise ValueError("channel arity does not match target qubits")
        batch = states.shape[0]
        tensor = states.reshape([batch] + [2] * num_qubits)
        src = [q + 1 for q in qubits]
        dest = list(range(1, k + 1))
        local = np.moveaxis(tensor, src, dest).reshape(batch, 1 << k, -1)

        weight_stack = self._weight_ops(channel)
        weights = np.einsum(
            "bir,kij,bjr->bk", local.conj(), weight_stack, local, optimize=True
        ).real
        weights = np.clip(weights, 0.0, None)
        totals = weights.sum(axis=1)
        active = totals > 0

        # One uniform per trajectory, scaled by the (unnormalized) total so
        # no per-row division is needed; rows with zero total keep their
        # state unchanged, matching the sequential path.
        cumulative = np.cumsum(weights, axis=1)
        draws = self._rng.random(batch) * totals
        choices = np.minimum(
            (draws[:, None] >= cumulative).sum(axis=1), len(channel.operators) - 1
        )

        out = local.copy()
        for index, op in enumerate(channel.operators):
            rows = np.nonzero(active & (choices == index))[0]
            if rows.size == 0:
                continue
            sub = op @ local[rows]
            norms = np.sqrt(np.sum(np.abs(sub) ** 2, axis=(1, 2)))
            out[rows] = sub / norms[:, None, None]

        out = out.reshape([batch] + [2] * num_qubits)
        out = np.moveaxis(out, dest, src)
        return out.reshape(batch, -1)

    # ------------------------------------------------------------------
    # sequential reference
    # ------------------------------------------------------------------
    def _run_single_trajectory(self, circuit: QuantumCircuit) -> Statevector:
        state = Statevector(circuit.num_qubits)
        for inst in circuit:
            if not inst.is_unitary:
                continue
            params = tuple(float(p) for p in inst.params)
            state.apply_gate(inst.name, inst.qubits, params)
            if len(inst.qubits) == 1:
                self._apply_channel(state, self._cache.depol_1q, inst.qubits)
                self._apply_channel(state, self._cache.relax_1q, inst.qubits)
            else:
                self._apply_channel(state, self._cache.depol_2q, inst.qubits)
                for qubit in inst.qubits:
                    self._apply_channel(state, self._cache.relax_2q, (qubit,))
        return state

    def _apply_channel(
        self, state: Statevector, channel: KrausChannel, qubits: Sequence[int]
    ) -> None:
        """Stochastically apply one Kraus operator of ``channel`` in place.

        Born weights come first, from the ``K^dag K`` quadratic forms on the
        local tensor — only the *selected* operator is ever applied to the
        state, instead of materializing a full candidate state per operator.
        """
        if channel.is_identity():
            return
        k = channel.num_qubits
        if k != len(qubits):
            raise ValueError("channel arity does not match target qubits")
        vec = state._vec  # noqa: SLF001 - internal fast path (read-only here)
        n = state.num_qubits
        tensor = vec.reshape([2] * n)
        local = np.moveaxis(tensor, list(qubits), list(range(k))).reshape(1 << k, -1)

        weight_stack = self._weight_ops(channel)
        weights = np.einsum(
            "ir,kij,jr->k", local.conj(), weight_stack, local, optimize=True
        ).real
        weights = np.clip(weights, 0.0, None)
        total = weights.sum()
        if total <= 0:
            return
        choice = self._rng.choice(weights.size, p=weights / total)
        chosen = _apply_matrix_raw(vec, channel.operators[choice], qubits, n)
        norm = np.linalg.norm(chosen)
        state._vec = chosen / norm  # noqa: SLF001 - internal fast path


def _apply_matrix_batch(
    states: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply one small matrix to every state of a ``(batch, 2**n)`` stack."""
    batch = states.shape[0]
    k = len(qubits)
    tensor = states.reshape([batch] + [2] * num_qubits)
    src = [q + 1 for q in qubits]
    dest = list(range(1, k + 1))
    tensor = np.moveaxis(tensor, src, dest).reshape(batch, 1 << k, -1)
    tensor = matrix @ tensor
    tensor = tensor.reshape([batch] + [2] * num_qubits)
    tensor = np.moveaxis(tensor, dest, src)
    return tensor.reshape(batch, -1)


def _apply_matrix_raw(
    vec: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a (possibly non-unitary) matrix to an amplitude vector."""
    k = len(qubits)
    tensor = vec.reshape([2] * num_qubits)
    tensor = np.moveaxis(tensor, list(qubits), list(range(k)))
    tensor = tensor.reshape(1 << k, -1)
    tensor = matrix @ tensor
    tensor = tensor.reshape([2] * k + [2] * (num_qubits - k))
    tensor = np.moveaxis(tensor, list(range(k)), list(qubits))
    # reshape(-1) copies only when the moveaxis view is non-contiguous; the
    # previous explicit ascontiguousarray always paid the copy.
    return tensor.reshape(-1)


# ---------------------------------------------------------------------------
# exact density-matrix reference
# ---------------------------------------------------------------------------


def density_matrix_probabilities(
    circuit: QuantumCircuit,
    noise: TrajectoryNoiseSpec,
) -> np.ndarray:
    """The *exact* noisy outcome distribution via density-matrix evolution.

    Evolves the full ``(2**n, 2**n)`` density matrix through every gate and
    its Kraus channels (the map the stochastic trajectories sample from), so
    trajectory averages converge to this vector as ``1/sqrt(T)``.  Intended
    for validation on small circuits — cost is ``O(4**n)`` per gate.
    """
    if not circuit.is_bound:
        raise ValueError("circuit has unbound parameters")
    n = circuit.num_qubits
    dim = 1 << n
    rho = np.zeros((dim, dim), dtype=complex)
    rho[0, 0] = 1.0

    depol_1q = depolarizing_channel(noise.single_qubit_error)
    depol_2q = two_qubit_depolarizing_channel(noise.two_qubit_error)
    relax_1q = thermal_relaxation_channel(
        noise.t1, noise.t2, noise.single_qubit_gate_time
    )
    relax_2q = thermal_relaxation_channel(
        noise.t1, noise.t2, noise.two_qubit_gate_time
    )

    def apply_unitary(matrix: np.ndarray, qubits: Sequence[int]) -> None:
        nonlocal rho
        full = _expand_operator(matrix, qubits, n)
        rho = full @ rho @ full.conj().T

    def apply_channel(channel: KrausChannel, qubits: Sequence[int]) -> None:
        nonlocal rho
        if channel.is_identity():
            return
        expanded = [_expand_operator(op, qubits, n) for op in channel.operators]
        rho = sum(full @ rho @ full.conj().T for full in expanded)

    for inst in circuit:
        if not inst.is_unitary:
            continue
        params = tuple(float(p) for p in inst.params)
        apply_unitary(gate_matrix(inst.name, params), inst.qubits)
        if len(inst.qubits) == 1:
            apply_channel(depol_1q, inst.qubits)
            apply_channel(relax_1q, inst.qubits)
        else:
            apply_channel(depol_2q, inst.qubits)
            for qubit in inst.qubits:
                apply_channel(relax_2q, (qubit,))

    measured = circuit.measured_qubits or tuple(range(n))
    diagonal = np.clip(np.real(np.diag(rho)), 0.0, None)
    probs = marginal_distribution(diagonal[None, :], measured, n)[0]

    if noise.readout_p01 != 0.0 or noise.readout_p10 != 0.0:
        confusion = readout_confusion_matrix(noise.readout_p01, noise.readout_p10)
        probs = apply_readout_error(probs, [confusion] * len(measured))
    return probs


def _expand_operator(
    matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Lift a ``2**k``-dim operator on ``qubits`` to the full ``2**n`` space."""
    k = len(qubits)
    others = [q for q in range(num_qubits) if q not in qubits]
    full = np.kron(matrix, np.eye(1 << len(others), dtype=complex))
    # Row/column axes are currently ordered (qubits..., others...); permute
    # both sides back to physical qubit order.
    order = list(qubits) + others
    inverse = np.argsort(order)
    tensor = full.reshape([2] * (2 * num_qubits))
    perm = list(inverse) + [num_qubits + ax for ax in inverse]
    return np.transpose(tensor, perm).reshape(1 << num_qubits, 1 << num_qubits)
