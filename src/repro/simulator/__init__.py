"""Quantum circuit simulators: ideal statevector, Kraus trajectories, fast mixing."""

from .channels import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    phase_damping_channel,
    readout_confusion_matrix,
    thermal_relaxation_channel,
    two_qubit_depolarizing_channel,
)
from .mixing import (
    MixingNoiseSpec,
    apply_coherent_bias,
    execute_with_mixing,
    noisy_probabilities,
    noisy_probabilities_batch,
    noisy_sweep_probabilities,
)
from .result import Counts, ExecutionResult
from .sampler import (
    apply_readout_error,
    apply_readout_error_batch,
    distribution_to_counts,
    sample_circuit_ideal,
    sample_distribution,
    sample_distribution_batch,
    sample_statevector,
)
from .statevector import Statevector, simulate_statevector
from .trajectory import (
    MonteCarloSimulator,
    TrajectoryNoiseSpec,
    density_matrix_probabilities,
)

__all__ = [
    "Statevector",
    "simulate_statevector",
    "Counts",
    "ExecutionResult",
    "KrausChannel",
    "depolarizing_channel",
    "two_qubit_depolarizing_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "bit_flip_channel",
    "thermal_relaxation_channel",
    "readout_confusion_matrix",
    "sample_distribution",
    "sample_distribution_batch",
    "sample_statevector",
    "sample_circuit_ideal",
    "apply_readout_error",
    "apply_readout_error_batch",
    "distribution_to_counts",
    "MixingNoiseSpec",
    "apply_coherent_bias",
    "execute_with_mixing",
    "noisy_probabilities",
    "noisy_probabilities_batch",
    "noisy_sweep_probabilities",
    "MonteCarloSimulator",
    "TrajectoryNoiseSpec",
    "density_matrix_probabilities",
]
