"""Fast analytic noisy execution: global depolarizing mixing + SPAM.

The EQC experiments replay hundreds of thousands of circuit executions
(Section V reports ~500k on IBMQ), so the large-scale harness cannot afford a
full Kraus trajectory per shot.  This module provides the standard
approximation used for such studies:

1. simulate the circuit ideally (optionally with a *coherent* per-device
   over-rotation bias applied to every rotation angle),
2. mix the ideal outcome distribution with the maximally-mixed (uniform)
   distribution, weighted by the device's probability of error-free execution
   for this transpiled circuit,
3. push the result through per-qubit readout-confusion matrices,
4. sample shots.

Step 2's weight is exactly the quantity the paper's ``PCorrect`` model
(Eq. 2) estimates; the *ground-truth* value used here is computed by the
device model from its private calibration state (including latent cross-talk
and drift the estimator cannot see), which is what gives the Fig. 4
calculated-vs-observed scatter its spread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Instruction
from ..engine import execute_program, marginal_probabilities, slot_values_from_circuits
from ..engine.cache import shared_program_cache
from .channels import readout_confusion_matrix
from .result import Counts
from .sampler import apply_readout_error, sample_distribution

__all__ = ["MixingNoiseSpec", "apply_coherent_bias", "execute_with_mixing", "noisy_probabilities"]

_ROTATION_GATES = frozenset({"rx", "ry", "rz", "rzz"})


@dataclass(frozen=True)
class MixingNoiseSpec:
    """Noise description consumed by the analytic mixing executor.

    Attributes:
        success_probability: probability the whole circuit executes without a
            depolarizing fault; the complement mixes the output with the
            uniform distribution.
        readout_p01: per-qubit probability of reading 1 for a true 0.
        readout_p10: per-qubit probability of reading 0 for a true 1.
        coherent_bias: multiplicative over-rotation applied to every rotation
            angle (``theta -> theta * (1 + coherent_bias)``); models the
            device-specific systematic bias that single-device VQA training
            silently absorbs into its learned parameters (paper Section I).
        per_qubit_readout: optional explicit (p01, p10) per measured qubit,
            overriding the scalar values when provided.
    """

    success_probability: float
    readout_p01: float = 0.0
    readout_p10: float = 0.0
    coherent_bias: float = 0.0
    per_qubit_readout: tuple[tuple[float, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0.0 <= self.success_probability <= 1.0:
            raise ValueError("success_probability must be within [0, 1]")
        for name in ("readout_p01", "readout_p10"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        for p01, p10 in self.per_qubit_readout:
            if not (0.0 <= p01 <= 1.0 and 0.0 <= p10 <= 1.0):
                raise ValueError("per-qubit readout probabilities outside [0, 1]")


def apply_coherent_bias(circuit: QuantumCircuit, bias: float) -> QuantumCircuit:
    """Return a copy of a bound circuit with over-rotated rotation angles.

    Only rotation gates are affected; discrete gates (H, X, CNOT, ...) are
    assumed to be implemented by calibrated pulses whose systematic error is
    already captured in the depolarizing budget.
    """
    if bias == 0.0:
        return circuit
    if not circuit.is_bound:
        raise ValueError("coherent bias can only be applied to a bound circuit")
    biased = QuantumCircuit(circuit.num_qubits, circuit.name)
    for inst in circuit:
        if inst.name in _ROTATION_GATES:
            params = tuple(float(p) * (1.0 + bias) for p in inst.params)
            biased.append(Instruction(inst.name, inst.qubits, params))
        else:
            biased.append(inst)
    return biased


def _ideal_probabilities(circuit: QuantumCircuit, bias: float) -> np.ndarray:
    """Ideal measured-register distribution via the compiled engine.

    The circuit's structure compiles once (shared, structure-keyed cache);
    the coherent over-rotation bias is applied by scaling the rotation slots
    of the extracted angle vector — the same ``theta * (1 + bias)`` floats
    :func:`apply_coherent_bias` would have bound, with zero circuit
    rebuilding.
    """
    program = shared_program_cache().get_or_compile(circuit)
    thetas = slot_values_from_circuits(program, [circuit])
    if bias != 0.0:
        scale = np.array(
            [1.0 + bias if g in _ROTATION_GATES else 1.0 for g in program.slot_gates]
        )
        thetas = thetas * scale
    states = execute_program(program, thetas)
    measured = circuit.measured_qubits or tuple(range(circuit.num_qubits))
    return marginal_probabilities(states, measured, circuit.num_qubits)[0]


def noisy_probabilities(
    circuit: QuantumCircuit,
    noise: MixingNoiseSpec,
) -> np.ndarray:
    """The analytic noisy outcome distribution over the measured qubits."""
    if not circuit.is_bound:
        raise ValueError("circuit has unbound parameters")
    measured = circuit.measured_qubits or tuple(range(circuit.num_qubits))
    ideal = _ideal_probabilities(circuit, noise.coherent_bias)

    uniform = np.full_like(ideal, 1.0 / ideal.size)
    mixed = noise.success_probability * ideal + (1.0 - noise.success_probability) * uniform

    confusions = _confusion_matrices(noise, len(measured))
    if confusions:
        mixed = apply_readout_error(mixed, confusions)
    return mixed


def execute_with_mixing(
    circuit: QuantumCircuit,
    noise: MixingNoiseSpec,
    shots: int,
    rng: np.random.Generator,
) -> Counts:
    """Execute a bound circuit under the analytic mixing noise model."""
    if shots < 1:
        raise ValueError("shots must be >= 1")
    measured = circuit.measured_qubits or tuple(range(circuit.num_qubits))
    probs = noisy_probabilities(circuit, noise)
    return sample_distribution(probs, shots, rng, num_bits=len(measured))


def _confusion_matrices(noise: MixingNoiseSpec, num_bits: int) -> list[np.ndarray]:
    if noise.per_qubit_readout:
        if len(noise.per_qubit_readout) < num_bits:
            raise ValueError("per_qubit_readout shorter than the measured register")
        return [
            readout_confusion_matrix(p01, p10)
            for p01, p10 in noise.per_qubit_readout[:num_bits]
        ]
    if noise.readout_p01 == 0.0 and noise.readout_p10 == 0.0:
        return []
    return [
        readout_confusion_matrix(noise.readout_p01, noise.readout_p10)
        for _ in range(num_bits)
    ]
