"""Fast analytic noisy execution: global depolarizing mixing + SPAM.

The EQC experiments replay hundreds of thousands of circuit executions
(Section V reports ~500k on IBMQ), so the large-scale harness cannot afford a
full Kraus trajectory per shot.  This module provides the standard
approximation used for such studies:

1. simulate the circuit ideally (optionally with a *coherent* per-device
   over-rotation bias applied to every rotation angle),
2. mix the ideal outcome distribution with the maximally-mixed (uniform)
   distribution, weighted by the device's probability of error-free execution
   for this transpiled circuit,
3. push the result through per-qubit readout-confusion matrices,
4. sample shots.

Step 2's weight is exactly the quantity the paper's ``PCorrect`` model
(Eq. 2) estimates; the *ground-truth* value used here is computed by the
device model from its private calibration state (including latent cross-talk
and drift the estimator cannot see), which is what gives the Fig. 4
calculated-vs-observed scatter its spread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Instruction
from ..engine import (
    execute_program,
    marginal_probabilities,
    plan_slot_values,
    slot_values_from_circuits,
)
from ..engine.cache import shared_program_cache
from .channels import readout_confusion_matrix
from .result import Counts
from .sampler import apply_readout_error, apply_readout_error_batch, sample_distribution

__all__ = [
    "MixingNoiseSpec",
    "apply_coherent_bias",
    "execute_with_mixing",
    "noisy_probabilities",
    "noisy_probabilities_batch",
    "noisy_sweep_probabilities",
]

_ROTATION_GATES = frozenset({"rx", "ry", "rz", "rzz"})


@dataclass(frozen=True)
class MixingNoiseSpec:
    """Noise description consumed by the analytic mixing executor.

    Attributes:
        success_probability: probability the whole circuit executes without a
            depolarizing fault; the complement mixes the output with the
            uniform distribution.
        readout_p01: per-qubit probability of reading 1 for a true 0.
        readout_p10: per-qubit probability of reading 0 for a true 1.
        coherent_bias: multiplicative over-rotation applied to every rotation
            angle (``theta -> theta * (1 + coherent_bias)``); models the
            device-specific systematic bias that single-device VQA training
            silently absorbs into its learned parameters (paper Section I).
        per_qubit_readout: optional explicit (p01, p10) per measured qubit,
            overriding the scalar values when provided.
    """

    success_probability: float
    readout_p01: float = 0.0
    readout_p10: float = 0.0
    coherent_bias: float = 0.0
    per_qubit_readout: tuple[tuple[float, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0.0 <= self.success_probability <= 1.0:
            raise ValueError("success_probability must be within [0, 1]")
        for name in ("readout_p01", "readout_p10"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        for p01, p10 in self.per_qubit_readout:
            if not (0.0 <= p01 <= 1.0 and 0.0 <= p10 <= 1.0):
                raise ValueError("per-qubit readout probabilities outside [0, 1]")


def apply_coherent_bias(circuit: QuantumCircuit, bias: float) -> QuantumCircuit:
    """Return a copy of a bound circuit with over-rotated rotation angles.

    Only rotation gates are affected; discrete gates (H, X, CNOT, ...) are
    assumed to be implemented by calibrated pulses whose systematic error is
    already captured in the depolarizing budget.
    """
    if bias == 0.0:
        return circuit
    if not circuit.is_bound:
        raise ValueError("coherent bias can only be applied to a bound circuit")
    biased = QuantumCircuit(circuit.num_qubits, circuit.name)
    for inst in circuit:
        if inst.name in _ROTATION_GATES:
            params = tuple(float(p) * (1.0 + bias) for p in inst.params)
            biased.append(Instruction(inst.name, inst.qubits, params))
        else:
            biased.append(inst)
    return biased


def _ideal_probabilities(circuit: QuantumCircuit, bias: float) -> np.ndarray:
    """Ideal measured-register distribution via the compiled engine.

    The circuit's structure compiles once (shared, structure-keyed cache);
    the coherent over-rotation bias is applied by scaling the rotation slots
    of the extracted angle vector — the same ``theta * (1 + bias)`` floats
    :func:`apply_coherent_bias` would have bound, with zero circuit
    rebuilding.
    """
    program = shared_program_cache().get_or_compile(circuit)
    thetas = slot_values_from_circuits(program, [circuit])
    if bias != 0.0:
        scale = np.array(
            [1.0 + bias if g in _ROTATION_GATES else 1.0 for g in program.slot_gates]
        )
        thetas = thetas * scale
    states = execute_program(program, thetas)
    measured = circuit.measured_qubits or tuple(range(circuit.num_qubits))
    return marginal_probabilities(states, measured, circuit.num_qubits)[0]


def noisy_probabilities(
    circuit: QuantumCircuit,
    noise: MixingNoiseSpec,
) -> np.ndarray:
    """The analytic noisy outcome distribution over the measured qubits."""
    if not circuit.is_bound:
        raise ValueError("circuit has unbound parameters")
    measured = circuit.measured_qubits or tuple(range(circuit.num_qubits))
    ideal = _ideal_probabilities(circuit, noise.coherent_bias)

    uniform = np.full_like(ideal, 1.0 / ideal.size)
    mixed = noise.success_probability * ideal + (1.0 - noise.success_probability) * uniform

    confusions = _confusion_matrices(noise, len(measured))
    if confusions:
        mixed = apply_readout_error(mixed, confusions)
    return mixed


def noisy_probabilities_batch(
    circuits: Sequence[QuantumCircuit],
    noises: Sequence[MixingNoiseSpec],
) -> list[np.ndarray]:
    """Analytic noisy outcome distributions for a whole device batch at once.

    The vectorized counterpart of :func:`noisy_probabilities`: the batch is
    partitioned by gate structure, each partition runs as **one** compiled
    program execution over its ``(batch, slots)`` angle matrix (per-circuit
    coherent biases applied by scaling rotation slots row-wise), the
    depolarizing mix is a single broadcast combine against the uniform
    distribution, and readout confusion is one batched per-bit contraction.
    Every arithmetic step performs the identical per-row operations the
    sequential path performs, so row ``i`` of the result matches
    ``noisy_probabilities(circuits[i], noises[i])`` to within ~1e-16 (the
    only difference is the GEMM batch shape inside the compiled engine) —
    far below the multinomial sampler's decision thresholds, which is why
    the seeded golden histories stay bit-exact.

    Args:
        circuits: fully-bound circuits (any mix of structures).
        noises: one :class:`MixingNoiseSpec` per circuit — each evaluated at
            that circuit's position on the device clock by the caller.

    Returns:
        One measured-register distribution per circuit, in input order.
    """
    circuits = list(circuits)
    noises = list(noises)
    if not circuits:
        raise ValueError("a batch needs at least one circuit")
    if len(circuits) != len(noises):
        raise ValueError(
            f"{len(circuits)} circuits do not align with {len(noises)} noise specs"
        )
    for circuit in circuits:
        if not circuit.is_bound:
            raise ValueError("circuit has unbound parameters")

    partitions: dict[object, list[int]] = {}
    for index, circuit in enumerate(circuits):
        partitions.setdefault(circuit.structure_key, []).append(index)

    cache = shared_program_cache()
    out: list[np.ndarray | None] = [None] * len(circuits)
    for indices in partitions.values():
        members = [circuits[i] for i in indices]
        specs = [noises[i] for i in indices]
        first = members[0]
        program = cache.get_or_compile(first)
        thetas = slot_values_from_circuits(program, members)
        thetas = _bias_scaled(thetas, program.slot_gates, specs)
        states = execute_program(program, thetas)
        measured = first.measured_qubits or tuple(range(first.num_qubits))
        ideal = marginal_probabilities(states, measured, first.num_qubits)
        mixed = _mix_and_confuse(ideal, specs, len(measured))
        for row, index in enumerate(indices):
            out[index] = mixed[row]
    return out  # type: ignore[return-value]


def noisy_sweep_probabilities(
    templates: Sequence[QuantumCircuit],
    theta_matrix: np.ndarray,
    noises: Sequence[MixingNoiseSpec],
) -> list[np.ndarray]:
    """Noisy distributions of a zero-rebind parameter sweep on one device.

    The sweep-aware entry of the batched pipeline: each template compiles
    once and executes over the whole ``(points, P)`` parameter matrix — no
    circuit is ever bound.  ``noises`` is indexed in the **flat execution
    order** of the sweep, point-major with templates inner (the order
    :meth:`~repro.backends.batched.BatchedStatevectorBackend.run_sweep`
    samples in), because each flat position sits at its own spot on the
    device clock.  The returned distributions follow the same flat order.
    """
    templates = list(templates)
    theta = np.atleast_2d(np.asarray(theta_matrix, dtype=float))
    points = theta.shape[0]
    noises = list(noises)
    if len(noises) != points * len(templates):
        raise ValueError(
            f"{len(noises)} noise specs do not cover {points} points x "
            f"{len(templates)} templates"
        )
    cache = shared_program_cache()
    num_templates = len(templates)
    out: list[np.ndarray | None] = [None] * len(noises)
    for offset, template in enumerate(templates):
        specs = [noises[p * num_templates + offset] for p in range(points)]
        program = cache.get_or_compile(template)
        plan = cache.plan_for(template, program)
        thetas = _bias_scaled(plan_slot_values(plan, theta), program.slot_gates, specs)
        states = execute_program(program, thetas)
        measured = template.measured_qubits or tuple(range(template.num_qubits))
        mixed = _mix_and_confuse(
            marginal_probabilities(states, measured, template.num_qubits),
            specs,
            len(measured),
        )
        for point in range(points):
            out[point * num_templates + offset] = mixed[point]
    return out  # type: ignore[return-value]


def _bias_scaled(
    thetas: np.ndarray,
    slot_gates: Sequence[str],
    noises: Sequence[MixingNoiseSpec],
) -> np.ndarray:
    """Apply per-circuit coherent over-rotation biases to a slot-angle matrix.

    Row ``i`` is multiplied by the same ``(1 + bias)``-at-rotation-slots
    vector :func:`_ideal_probabilities` builds for one circuit, so the scaled
    angles are bitwise identical to the sequential path's.
    """
    biases = np.array([spec.coherent_bias for spec in noises], dtype=float)
    if not np.any(biases != 0.0):
        return thetas
    scale = np.ones((len(noises), len(slot_gates)), dtype=float)
    rotation = np.array([g in _ROTATION_GATES for g in slot_gates], dtype=bool)
    scale[:, rotation] = (1.0 + biases)[:, None]
    return thetas * scale


def _mix_and_confuse(
    ideal: np.ndarray,
    noises: Sequence[MixingNoiseSpec],
    num_bits: int,
) -> np.ndarray:
    """Depolarizing mix + readout confusion for a ``(batch, 2**m)`` stack."""
    success = np.array([spec.success_probability for spec in noises], dtype=float)
    uniform = np.full_like(ideal, 1.0 / ideal.shape[1])
    mixed = success[:, None] * ideal + (1.0 - success)[:, None] * uniform

    confusions = [_confusion_matrices(spec, num_bits) for spec in noises]
    with_readout = [bool(c) for c in confusions]
    if not any(with_readout):
        return mixed
    if all(with_readout):
        stacks = [
            np.stack([conf[bit] for conf in confusions])
            for bit in range(num_bits)
        ]
        return apply_readout_error_batch(mixed, stacks)
    # Mixed batch (some circuits noiseless on readout): fall back row-wise so
    # the no-confusion rows keep the sequential path's skip-renormalize
    # behaviour exactly.
    return np.stack(
        [
            apply_readout_error(row, conf) if conf else row
            for row, conf in zip(mixed, confusions)
        ]
    )


def execute_with_mixing(
    circuit: QuantumCircuit,
    noise: MixingNoiseSpec,
    shots: int,
    rng: np.random.Generator,
) -> Counts:
    """Execute a bound circuit under the analytic mixing noise model."""
    if shots < 1:
        raise ValueError("shots must be >= 1")
    measured = circuit.measured_qubits or tuple(range(circuit.num_qubits))
    probs = noisy_probabilities(circuit, noise)
    return sample_distribution(probs, shots, rng, num_bits=len(measured))


def _confusion_matrices(noise: MixingNoiseSpec, num_bits: int) -> list[np.ndarray]:
    if noise.per_qubit_readout:
        if len(noise.per_qubit_readout) < num_bits:
            raise ValueError("per_qubit_readout shorter than the measured register")
        return [
            readout_confusion_matrix(p01, p10)
            for p01, p10 in noise.per_qubit_readout[:num_bits]
        ]
    if noise.readout_p01 == 0.0 and noise.readout_p10 == 0.0:
        return []
    return [
        readout_confusion_matrix(noise.readout_p01, noise.readout_p10)
        for _ in range(num_bits)
    ]
