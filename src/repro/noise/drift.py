"""Time-dependent noise drift between calibration events.

The paper repeatedly observes that NISQ device quality degrades (and
occasionally swings wildly) as time-since-calibration grows: the Fig. 4 GHZ
validation is markedly worse for 12-hour-old calibrations, Casablanca's VQE
run (Fig. 6) diverges after converging, and Toronto's throughput fluctuates by
two orders of magnitude.  This module models that behaviour.

The drift factor is a deterministic function of (device seed, calibration
cycle, hours since calibration), composed of:

* a **linear degradation** term (``drift_rate`` per hour),
* a **diurnal oscillation** (devices share cryostats, control electronics and
  job load that vary on a several-hour scale),
* occasional **noise bursts**: with some per-cycle probability, the device
  enters a window in which its errors are multiplied several-fold — the
  mechanism behind Casablanca-style divergence.

Determinism matters: every experiment in the reproduction is seeded, so two
runs of the same benchmark see identical device weather.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["DriftProfile", "DriftModel"]


@dataclass(frozen=True)
class DriftProfile:
    """Per-device drift characteristics.

    Attributes:
        drift_rate: fractional error growth per hour since calibration
            (0.02 means errors are 2% worse per hour).
        oscillation_amplitude: amplitude of the slow periodic swing
            (fraction of the base error level).
        oscillation_period_hours: period of the slow swing.
        burst_probability: probability per calibration cycle that the device
            experiences a noise burst window.
        burst_magnitude: multiplicative error inflation during a burst.
        burst_duration_hours: length of a burst window.
    """

    drift_rate: float = 0.02
    oscillation_amplitude: float = 0.05
    oscillation_period_hours: float = 9.0
    burst_probability: float = 0.15
    burst_magnitude: float = 3.0
    burst_duration_hours: float = 4.0

    def __post_init__(self) -> None:
        if self.drift_rate < 0:
            raise ValueError("drift_rate must be non-negative")
        if self.oscillation_amplitude < 0:
            raise ValueError("oscillation_amplitude must be non-negative")
        if self.oscillation_period_hours <= 0:
            raise ValueError("oscillation_period_hours must be positive")
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ValueError("burst_probability must be within [0, 1]")
        if self.burst_magnitude < 1.0:
            raise ValueError("burst_magnitude must be >= 1")
        if self.burst_duration_hours <= 0:
            raise ValueError("burst_duration_hours must be positive")


class DriftModel:
    """Deterministic drift-factor generator for one device."""

    def __init__(self, profile: DriftProfile, device_seed: int) -> None:
        self.profile = profile
        self.device_seed = int(device_seed)
        #: Per-cycle randomness (phase, burst roll, burst start) — drawn once
        #: per calibration cycle instead of reconstructing a Generator on
        #: every drift_factor call.  The draws and their order are identical
        #: to the uncached code, so factors are bit-exact.
        self._cycle_params: dict[int, tuple[float, float, float | None]] = {}

    # ------------------------------------------------------------------
    def drift_factor(self, hours_since_calibration: float, cycle: int = 0) -> float:
        """Multiplicative error inflation at a given calibration age.

        Args:
            hours_since_calibration: non-negative age of the current
                calibration, in hours.
            cycle: index of the calibration cycle (each recalibration starts
                a new cycle with fresh burst/phase randomness).

        Returns:
            A factor >= 1 applied to all reported error rates to obtain the
            device's *effective* error rates.
        """
        hours = max(0.0, float(hours_since_calibration))
        p = self.profile
        phase, _roll, burst_start = self._params_for(cycle)
        linear = p.drift_rate * hours
        oscillation = p.oscillation_amplitude * (
            1.0 + math.sin(2.0 * math.pi * hours / p.oscillation_period_hours + phase)
        ) / 2.0
        factor = 1.0 + linear + oscillation

        if burst_start is not None:
            if burst_start <= hours <= burst_start + p.burst_duration_hours:
                factor *= p.burst_magnitude
        return factor

    def _params_for(self, cycle: int) -> tuple[float, float, float | None]:
        """The cycle's (phase, burst roll, burst start) draws, memoized."""
        cycle = int(cycle)
        params = self._cycle_params.get(cycle)
        if params is None:
            rng = self._cycle_rng(cycle)
            phase = rng.uniform(0.0, 2.0 * math.pi)
            burst_roll = rng.uniform(0.0, 1.0)
            burst_start = (
                rng.uniform(1.0, 20.0)
                if burst_roll < self.profile.burst_probability
                else None
            )
            params = (phase, burst_roll, burst_start)
            self._cycle_params[cycle] = params
        return params

    def speed_factor(self, hours_since_calibration: float, cycle: int = 0) -> float:
        """Throughput multiplier (<= 1) at a given calibration age.

        Devices under drift (or mid-burst) also serve jobs more slowly —
        re-queues, retries and maintenance windows.  The paper reports
        Toronto swinging from 6.5 to 0.03 epochs/hour; this factor produces
        that style of slowdown.
        """
        factor = self.drift_factor(hours_since_calibration, cycle)
        return 1.0 / factor

    # ------------------------------------------------------------------
    def _cycle_rng(self, cycle: int) -> np.random.Generator:
        """Fresh deterministic randomness for each calibration cycle."""
        return np.random.default_rng((self.device_seed, int(cycle), 0x5EED))
