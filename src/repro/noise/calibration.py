"""Calibration snapshots: the data a QPU reports after each calibration.

IBMQ-style devices are recalibrated periodically (roughly daily) and publish a
snapshot of per-qubit coherence times, readout fidelities, and per-gate error
rates and durations.  Both sides of EQC consume this data:

* the **device model** (:mod:`repro.devices.qpu`) evolves its *effective*
  noise away from the reported snapshot as time-since-calibration grows
  (:mod:`repro.noise.drift`), which is the temporal drift the paper observes;
* the **client node** (:mod:`repro.core.client`) only ever sees the *reported*
  snapshot, from which it computes the ``PCorrect`` weighting estimate
  (paper Eq. 2) — the gap between reported and effective noise is precisely
  why the Fig. 4 scatter degrades for stale calibrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

__all__ = ["QubitCalibration", "GateCalibration", "CalibrationSnapshot"]


@dataclass(frozen=True)
class QubitCalibration:
    """Reported calibration data for a single physical qubit.

    Attributes:
        t1: relaxation time constant, seconds.
        t2: dephasing time constant, seconds (``t2 <= 2 * t1``).
        readout_p01: probability of reading 1 when the qubit held 0.
        readout_p10: probability of reading 0 when the qubit held 1.
        frequency: qubit transition frequency, Hz (informational).
        anharmonicity: transmon anharmonicity, Hz (informational).
    """

    t1: float
    t2: float
    readout_p01: float
    readout_p10: float
    frequency: float = 5.0e9
    anharmonicity: float = -0.33e9

    def __post_init__(self) -> None:
        if self.t1 <= 0 or self.t2 <= 0:
            raise ValueError("T1 and T2 must be positive")
        if self.t2 > 2 * self.t1 + 1e-15:
            raise ValueError("unphysical calibration: T2 exceeds 2*T1")
        for name in ("readout_p01", "readout_p10"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")

    @property
    def readout_error(self) -> float:
        """Symmetrized readout error probability."""
        return 0.5 * (self.readout_p01 + self.readout_p10)


@dataclass(frozen=True)
class GateCalibration:
    """Reported error rate and duration for one gate (or gate family)."""

    error: float
    duration: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.error <= 1.0:
            raise ValueError(f"gate error {self.error} outside [0, 1]")
        if self.duration < 0:
            raise ValueError("gate duration must be non-negative")

    @property
    def fidelity(self) -> float:
        return 1.0 - self.error


@dataclass(frozen=True)
class CalibrationSnapshot:
    """A complete calibration report for one device at one instant.

    Attributes:
        device_name: device the snapshot belongs to.
        timestamp: simulation time (seconds) the calibration completed.
        qubits: per-qubit calibration, indexed by physical qubit.
        single_qubit_gates: per-qubit 1-qubit (SX/X/RZ) gate calibration.
        two_qubit_gates: per-coupling CNOT calibration keyed by the ordered
            physical pair ``(control, target)``; both directions are present.
    """

    device_name: str
    timestamp: float
    qubits: tuple[QubitCalibration, ...]
    single_qubit_gates: tuple[GateCalibration, ...]
    two_qubit_gates: Mapping[tuple[int, int], GateCalibration] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.qubits:
            raise ValueError("a snapshot needs at least one qubit")
        if len(self.single_qubit_gates) != len(self.qubits):
            raise ValueError("need one single-qubit gate calibration per qubit")
        n = len(self.qubits)
        for (a, b) in self.two_qubit_gates:
            if not (0 <= a < n and 0 <= b < n) or a == b:
                raise ValueError(f"invalid coupling ({a}, {b}) for {n} qubits")

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def average_t1(self) -> float:
        return sum(q.t1 for q in self.qubits) / len(self.qubits)

    @property
    def average_t2(self) -> float:
        return sum(q.t2 for q in self.qubits) / len(self.qubits)

    @property
    def average_readout_error(self) -> float:
        return sum(q.readout_error for q in self.qubits) / len(self.qubits)

    @property
    def average_single_qubit_error(self) -> float:
        return sum(g.error for g in self.single_qubit_gates) / len(self.single_qubit_gates)

    @property
    def average_single_qubit_gate_time(self) -> float:
        return sum(g.duration for g in self.single_qubit_gates) / len(self.single_qubit_gates)

    @property
    def average_cx_error(self) -> float:
        if not self.two_qubit_gates:
            return 0.0
        errors = [g.error for g in self.two_qubit_gates.values()]
        return sum(errors) / len(errors)

    @property
    def average_cx_gate_time(self) -> float:
        if not self.two_qubit_gates:
            return 0.0
        durations = [g.duration for g in self.two_qubit_gates.values()]
        return sum(durations) / len(durations)

    # ------------------------------------------------------------------
    def cx_calibration(self, control: int, target: int) -> GateCalibration:
        """CNOT calibration for a physical pair (either direction accepted)."""
        key = (control, target)
        if key in self.two_qubit_gates:
            return self.two_qubit_gates[key]
        reverse = (target, control)
        if reverse in self.two_qubit_gates:
            return self.two_qubit_gates[reverse]
        raise KeyError(f"no CNOT calibration for coupling ({control}, {target})")

    def age_at(self, now: float) -> float:
        """Seconds elapsed since this calibration at simulation time ``now``."""
        return max(0.0, float(now) - self.timestamp)

    def with_timestamp(self, timestamp: float) -> "CalibrationSnapshot":
        """Copy of the snapshot stamped at a different time."""
        return replace(self, timestamp=float(timestamp))

    def scale_errors(self, factor: float) -> "CalibrationSnapshot":
        """Return a snapshot with all error rates scaled by ``factor``.

        Coherence times are divided by the same factor (noisier device ->
        shorter coherence).  Used by the drift model to produce the
        *effective* (unreported) calibration between calibration events.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")

        def clamp(p: float) -> float:
            return min(1.0, max(0.0, p))

        qubits = tuple(
            QubitCalibration(
                t1=q.t1 / factor,
                t2=min(q.t2 / factor, 2 * q.t1 / factor),
                readout_p01=clamp(q.readout_p01 * factor),
                readout_p10=clamp(q.readout_p10 * factor),
                frequency=q.frequency,
                anharmonicity=q.anharmonicity,
            )
            for q in self.qubits
        )
        singles = tuple(
            GateCalibration(error=clamp(g.error * factor), duration=g.duration)
            for g in self.single_qubit_gates
        )
        twos = {
            pair: GateCalibration(error=clamp(g.error * factor), duration=g.duration)
            for pair, g in self.two_qubit_gates.items()
        }
        return CalibrationSnapshot(
            device_name=self.device_name,
            timestamp=self.timestamp,
            qubits=qubits,
            single_qubit_gates=singles,
            two_qubit_gates=twos,
        )
