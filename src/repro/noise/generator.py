"""Calibration generation: sampling realistic calibration snapshots.

Each device in the Table I catalog carries a :class:`NoiseProfile` describing
its *typical* calibration quality (derived from published IBMQ-era Falcon
figures: T1/T2 of tens-to-hundreds of microseconds, single-qubit errors of a
few 1e-4, CNOT errors around 1e-2, readout errors of a few percent).  A
:class:`CalibrationGenerator` samples fresh :class:`CalibrationSnapshot`
objects around that profile with qubit-to-qubit variation, giving every
calibration cycle a slightly different — but device-characteristic — noise
fingerprint, just like real recalibrations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .calibration import CalibrationSnapshot, GateCalibration, QubitCalibration

__all__ = ["NoiseProfile", "CalibrationGenerator"]


@dataclass(frozen=True)
class NoiseProfile:
    """Typical calibration figures for one device.

    All quantities are medians; relative spread controls the lognormal
    qubit-to-qubit and cycle-to-cycle variation.

    Attributes:
        t1: median T1, seconds.
        t2: median T2, seconds.
        single_qubit_error: median 1-qubit depolarizing error per gate.
        cx_error: median CNOT error per gate.
        readout_error: median symmetric readout error.
        single_qubit_gate_time: seconds.
        cx_gate_time: seconds.
        relative_spread: lognormal sigma applied when sampling.
        crosstalk: latent cross-talk penalty per entangling gate; *not*
            reported in snapshots (the estimator never sees it), but it
            degrades the device's true success probability.  Highly-connected
            topologies (e.g. the fully-connected ``x2``) get larger values,
            matching the paper's Section III-C.3 discussion.
        coherent_bias: systematic over-rotation fraction for rotation gates;
            the device-specific bias single-machine training silently learns.
    """

    t1: float = 100e-6
    t2: float = 90e-6
    single_qubit_error: float = 4e-4
    cx_error: float = 1.2e-2
    readout_error: float = 2.5e-2
    single_qubit_gate_time: float = 35e-9
    cx_gate_time: float = 320e-9
    relative_spread: float = 0.25
    crosstalk: float = 0.0
    coherent_bias: float = 0.0

    def __post_init__(self) -> None:
        if min(self.t1, self.t2) <= 0:
            raise ValueError("T1/T2 must be positive")
        for name in ("single_qubit_error", "cx_error", "readout_error"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        if self.relative_spread < 0:
            raise ValueError("relative_spread must be non-negative")
        if not 0.0 <= self.crosstalk <= 1.0:
            raise ValueError("crosstalk must be within [0, 1]")


class CalibrationGenerator:
    """Samples calibration snapshots for one device around its profile."""

    def __init__(self, profile: NoiseProfile, device_seed: int) -> None:
        self.profile = profile
        self.device_seed = int(device_seed)

    def generate(
        self,
        device_name: str,
        num_qubits: int,
        couplings: Iterable[tuple[int, int]],
        timestamp: float,
        cycle: int = 0,
    ) -> CalibrationSnapshot:
        """Generate the snapshot for one calibration cycle.

        Args:
            device_name: device the snapshot is for.
            num_qubits: number of physical qubits.
            couplings: directed physical couplings (both directions are
                calibrated; if only one direction is supplied, the reverse is
                added automatically).
            timestamp: simulation time (seconds) the calibration completes.
            cycle: calibration cycle index — successive cycles draw fresh
                randomness deterministically.
        """
        rng = np.random.default_rng((self.device_seed, int(cycle), 0xCAFE))
        profile = self.profile

        qubits = []
        single_gates = []
        for _ in range(num_qubits):
            t1 = self._lognormal(rng, profile.t1)
            t2 = min(self._lognormal(rng, profile.t2), 2.0 * t1)
            readout = self._lognormal(rng, profile.readout_error)
            asymmetry = rng.uniform(0.7, 1.3)
            qubits.append(
                QubitCalibration(
                    t1=t1,
                    t2=t2,
                    readout_p01=self._clamp(readout * asymmetry),
                    readout_p10=self._clamp(readout * (2.0 - asymmetry)),
                    frequency=rng.uniform(4.8e9, 5.3e9),
                    anharmonicity=rng.uniform(-0.35e9, -0.31e9),
                )
            )
            single_gates.append(
                GateCalibration(
                    error=self._clamp(self._lognormal(rng, profile.single_qubit_error)),
                    duration=profile.single_qubit_gate_time,
                )
            )

        two_qubit = {}
        for a, b in couplings:
            pair = (int(a), int(b))
            error = self._clamp(self._lognormal(rng, profile.cx_error))
            duration = self._lognormal(rng, profile.cx_gate_time)
            two_qubit[pair] = GateCalibration(error=error, duration=duration)
            reverse = (pair[1], pair[0])
            if reverse not in two_qubit:
                # The reverse direction is usually slightly worse (extra
                # single-qubit dressing), mirroring real backends.
                two_qubit[reverse] = GateCalibration(
                    error=self._clamp(error * rng.uniform(1.0, 1.15)),
                    duration=duration * rng.uniform(1.0, 1.1),
                )

        return CalibrationSnapshot(
            device_name=device_name,
            timestamp=float(timestamp),
            qubits=tuple(qubits),
            single_qubit_gates=tuple(single_gates),
            two_qubit_gates=two_qubit,
        )

    # ------------------------------------------------------------------
    def _lognormal(self, rng: np.random.Generator, median: float) -> float:
        if median <= 0:
            return 0.0
        sigma = self.profile.relative_spread
        if sigma == 0:
            return median
        return float(median * np.exp(rng.normal(0.0, sigma)))

    @staticmethod
    def _clamp(p: float, low: float = 0.0, high: float = 0.5) -> float:
        """Keep sampled probabilities inside a sane range."""
        return float(min(high, max(low, p)))
