"""Calibration data, calibration sampling, and time-dependent drift."""

from .calibration import CalibrationSnapshot, GateCalibration, QubitCalibration
from .drift import DriftModel, DriftProfile
from .generator import CalibrationGenerator, NoiseProfile

__all__ = [
    "QubitCalibration",
    "GateCalibration",
    "CalibrationSnapshot",
    "DriftProfile",
    "DriftModel",
    "NoiseProfile",
    "CalibrationGenerator",
]
