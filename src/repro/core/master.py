"""The EQC master node (paper Algorithm 1).

The master owns the global parameter vector, the cyclic task queue, and the
weighting state.  It dispatches one task to every idle client, waits for the
earliest in-flight job to finish (on the virtual clock), applies the weighted
ASGD update with whatever parameter snapshot that gradient was computed from
(gradient staleness is therefore real, exactly as in the asynchronous Ray
implementation), refreshes the finishing client's weight from its latest
``PCorrect``, and immediately hands that client the next task.

An *epoch* completes every time ``cycle_length`` updates have been applied —
the same bookkeeping the paper uses when it reports convergence epochs and
epochs/hour.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..cloud.clock import SECONDS_PER_HOUR
from ..telemetry import TELEMETRY as _telemetry
from ..vqa.optimizer import AsgdRule, ParameterVectorState
from ..vqa.tasks import CyclicTaskQueue
from .client import EQCClientNode, GradientOutcome
from .history import EpochRecord, TrainingHistory
from .objective import VQAObjective
from .weighting import WeightingConfig, normalize_weights

if TYPE_CHECKING:  # pragma: no cover - core never imports execution at runtime
    from ..execution.parallel import ParallelEnsembleExecutor

__all__ = ["EQCMasterNode", "MasterTelemetry"]


@dataclass
class MasterTelemetry:
    """Run-level counters the master accumulates (exposed for analysis)."""

    updates_applied: int = 0
    jobs_dispatched: int = 0
    circuits_executed: int = 0
    total_staleness: int = 0
    max_staleness: int = 0

    @property
    def mean_staleness(self) -> float:
        """Average parameter-version lag between dispatch and update."""
        if self.updates_applied == 0:
            return 0.0
        return self.total_staleness / self.updates_applied


@dataclass(order=True)
class _InFlight:
    """One outstanding job, ordered by completion time for the event loop.

    Sequential dispatch carries the finished ``outcome`` directly; parallel
    dispatch carries ``outcome=None`` plus the executor ``job_id`` to collect
    it from once this entry reaches the front of the event heap.
    """

    finish_time: float
    sequence: int
    outcome: GradientOutcome | None = field(compare=False)
    client: EQCClientNode = field(compare=False)
    job_id: int = field(compare=False, default=-1)


class EQCMasterNode:
    """Coordinates asynchronous VQA training over a quantum ensemble."""

    def __init__(
        self,
        objective: VQAObjective,
        clients: Sequence[EQCClientNode],
        task_queue: CyclicTaskQueue,
        rule: AsgdRule,
        weighting: WeightingConfig,
        initial_parameters: Sequence[float],
        label: str = "EQC",
        start_time: float = 0.0,
        executor: "ParallelEnsembleExecutor | None" = None,
    ) -> None:
        if not clients:
            raise ValueError("the ensemble needs at least one client node")
        names = [client.name for client in clients]
        if len(set(names)) != len(names):
            raise ValueError("client names must be unique")
        self.objective = objective
        self.clients = list(clients)
        self.task_queue = task_queue
        self.rule = rule
        self.weighting = weighting
        self.label = label
        self.state = ParameterVectorState(np.asarray(initial_parameters, dtype=float))
        self.telemetry = MasterTelemetry()
        #: Optional multiprocess executor; None keeps the in-process path.
        self._executor = executor
        self._start_time = float(start_time)
        self._p_correct: dict[str, float] = {}
        self._weights: dict[str, float] = {client.name: 1.0 for client in clients}

    # ------------------------------------------------------------------
    @property
    def cycle_length(self) -> int:
        return self.task_queue.cycle_length

    @property
    def current_weights(self) -> dict[str, float]:
        """The most recently computed per-client weights."""
        return dict(self._weights)

    # ------------------------------------------------------------------
    def train(
        self,
        num_epochs: int | None = None,
        record_every: int = 1,
        target_updates: int | None = None,
    ) -> TrainingHistory:
        """Run the asynchronous optimization for ``num_epochs`` epochs.

        ``target_updates`` overrides the epoch count with an exact update
        budget; when it is not a multiple of ``cycle_length`` the tail
        updates beyond the last full epoch are recorded as a final *partial*
        epoch (flagged in ``history.metadata['final_epoch_partial_updates']``)
        rather than silently dropped.
        """
        if target_updates is None:
            if num_epochs is None or num_epochs < 1:
                raise ValueError("num_epochs must be >= 1")
            target_updates = num_epochs * self.cycle_length
        elif target_updates < 1:
            raise ValueError("target_updates must be >= 1")
        if record_every < 1:
            raise ValueError("record_every must be >= 1")

        history = TrainingHistory(
            label=self.label,
            device_names=tuple(client.device_name for client in self.clients),
            metadata={
                "weighting": self.weighting.describe(),
                "learning_rate": self.rule.learning_rate,
                "num_clients": len(self.clients),
            },
        )

        pending: list[_InFlight] = []
        sequence = 0
        now = self._start_time
        telemetry_on = _telemetry.enabled
        epoch_wall_start = time.time_ns() if telemetry_on else 0
        epoch_sim_start = now

        # Initial dispatch: one task per client (Algorithm 1's first loop).
        for client in self.clients:
            sequence += 1
            heapq.heappush(pending, self._dispatch(client, now, sequence))

        epoch_completed = 0
        while self.telemetry.updates_applied < target_updates and pending:
            item = heapq.heappop(pending)
            now = max(now, item.finish_time)
            # Parallel dispatches park outcome=None; the gather happens here,
            # exactly where the sequential loop consumes the gradient, so the
            # update/weight/epoch bookkeeping below is shared verbatim.
            outcome = (
                item.outcome
                if item.outcome is not None
                else self._executor.collect(item.job_id)
            )
            client = item.client

            # Refresh this client's PCorrect and rebuild the ensemble weights.
            self._p_correct[client.name] = outcome.p_correct
            if self.weighting.refresh_on_every_update or not self._weights_initialized():
                self._weights = normalize_weights(self._p_correct, self.weighting.bounds)
            weight = self._weights.get(client.name, 1.0)

            # Weighted asynchronous update (Eq. 4 / Eq. 12).
            staleness = self.state.version - outcome.theta_version
            self.telemetry.total_staleness += max(0, staleness)
            self.telemetry.max_staleness = max(self.telemetry.max_staleness, staleness)
            apply_start = time.perf_counter() if telemetry_on else 0.0
            self.state.apply(outcome.task.parameter_index, outcome.gradient, self.rule, weight)
            self.telemetry.updates_applied += 1
            if telemetry_on:
                registry = _telemetry.registry
                registry.histogram("eqc.weight_update_seconds").observe(
                    time.perf_counter() - apply_start
                )
                registry.histogram(
                    "eqc.update_staleness", bounds=(0, 1, 2, 4, 8, 16, 32)
                ).observe(max(0, staleness))

            # Epoch bookkeeping.
            if self.telemetry.updates_applied % self.cycle_length == 0:
                epoch_completed += 1
                if telemetry_on:
                    end_ns = time.time_ns()
                    _telemetry.tracer.add_span(
                        f"epoch {epoch_completed}",
                        "eqc",
                        epoch_wall_start,
                        end_ns,
                        args={"updates": self.telemetry.updates_applied},
                    )
                    _telemetry.tracer.add_sim_span(
                        f"epoch {epoch_completed}",
                        "eqc",
                        "eqc epochs",
                        epoch_sim_start,
                        now - epoch_sim_start,
                    )
                    epoch_wall_start = end_ns
                    epoch_sim_start = now
                if epoch_completed % record_every == 0 or (
                    self.telemetry.updates_applied >= target_updates
                ):
                    history.add(
                        EpochRecord(
                            epoch=epoch_completed,
                            sim_time_hours=(now - self._start_time) / SECONDS_PER_HOUR,
                            loss=self.objective.exact_loss(self.state.snapshot()),
                            parameters=self.state.snapshot(),
                            weights=dict(self._weights),
                        )
                    )

            # Hand the finishing client its next task immediately.
            if self.telemetry.updates_applied < target_updates:
                sequence += 1
                heapq.heappush(pending, self._dispatch(client, now, sequence))

        # Tail updates past the last full epoch boundary: record them as a
        # final partial epoch so truncated update budgets stay visible.
        tail_updates = self.telemetry.updates_applied - epoch_completed * self.cycle_length
        if tail_updates > 0:
            history.add(
                EpochRecord(
                    epoch=epoch_completed + 1,
                    sim_time_hours=(now - self._start_time) / SECONDS_PER_HOUR,
                    loss=self.objective.exact_loss(self.state.snapshot()),
                    parameters=self.state.snapshot(),
                    weights=dict(self._weights),
                )
            )
            history.metadata["final_epoch_partial_updates"] = tail_updates
            history.final_epoch_fraction = tail_updates / self.cycle_length

        history.total_updates = self.telemetry.updates_applied
        history.total_jobs = self.telemetry.jobs_dispatched
        history.metadata["mean_staleness"] = self.telemetry.mean_staleness
        history.metadata["max_staleness"] = self.telemetry.max_staleness
        history.metadata["circuits_executed"] = self.telemetry.circuits_executed
        if telemetry_on:
            self.publish()
        return history

    def publish(self, registry=None, prefix: str = "eqc") -> None:
        """Write the master's run counters into a metrics registry as gauges."""
        if registry is None:
            registry = _telemetry.registry
        telemetry = self.telemetry
        registry.gauge(f"{prefix}.updates_applied").set(telemetry.updates_applied)
        registry.gauge(f"{prefix}.jobs_dispatched").set(telemetry.jobs_dispatched)
        registry.gauge(f"{prefix}.circuits_executed").set(telemetry.circuits_executed)
        registry.gauge(f"{prefix}.mean_staleness").set(telemetry.mean_staleness)
        registry.gauge(f"{prefix}.max_staleness").set(telemetry.max_staleness)

    # ------------------------------------------------------------------
    def _dispatch(self, client: EQCClientNode, now: float, sequence: int) -> _InFlight:
        """Assign the next cyclic task to ``client`` at time ``now``."""
        task = self.task_queue.next_task()
        if self._executor is not None:
            # The worker answers with the previewed finish time (and circuit
            # count, so dispatch-time telemetry matches the sequential path)
            # and simulates the job in the background.
            job_id, finish_time, num_circuits = self._executor.submit(
                client.device_name,
                task,
                self.state.snapshot(),
                now,
                self.state.version,
            )
            self.telemetry.jobs_dispatched += 1
            self.telemetry.circuits_executed += num_circuits
            return _InFlight(
                finish_time=finish_time,
                sequence=sequence,
                outcome=None,
                client=client,
                job_id=job_id,
            )
        outcome = client.execute_task(
            task,
            theta=self.state.snapshot(),
            submit_time=now,
            theta_version=self.state.version,
        )
        self.telemetry.jobs_dispatched += 1
        self.telemetry.circuits_executed += outcome.num_circuits
        return _InFlight(
            finish_time=outcome.finish_time,
            sequence=sequence,
            outcome=outcome,
            client=client,
        )

    def _weights_initialized(self) -> bool:
        return len(self._p_correct) == len(self.clients)
