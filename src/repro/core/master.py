"""The EQC master node (paper Algorithm 1).

The master owns the global parameter vector, the cyclic task queue, and the
weighting state.  It dispatches one task to every idle client, waits for the
earliest in-flight job to finish (on the virtual clock), applies the weighted
ASGD update with whatever parameter snapshot that gradient was computed from
(gradient staleness is therefore real, exactly as in the asynchronous Ray
implementation), refreshes the finishing client's weight from its latest
``PCorrect``, and immediately hands that client the next task.

An *epoch* completes every time ``cycle_length`` updates have been applied —
the same bookkeeping the paper uses when it reports convergence epochs and
epochs/hour.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..cloud.clock import SECONDS_PER_HOUR
from ..faults.errors import DeviceOutageError, FaultError, FleetExhaustedError
from ..faults.health import DeviceHealthTracker
from ..telemetry import TELEMETRY as _telemetry
from ..vqa.optimizer import AsgdRule, ParameterVectorState
from ..vqa.tasks import CyclicTaskQueue, GradientTask
from .client import EQCClientNode, GradientOutcome
from .history import EpochRecord, TrainingHistory
from .objective import VQAObjective
from .weighting import WeightingConfig, normalize_weights

if TYPE_CHECKING:  # pragma: no cover - core never imports execution at runtime
    from ..execution.parallel import ParallelEnsembleExecutor
    from ..persist.checkpoint import TrainingCheckpointer

__all__ = ["EQCMasterNode", "MasterTelemetry"]


@dataclass
class MasterTelemetry:
    """Run-level counters the master accumulates (exposed for analysis)."""

    updates_applied: int = 0
    jobs_dispatched: int = 0
    circuits_executed: int = 0
    total_staleness: int = 0
    max_staleness: int = 0

    @property
    def mean_staleness(self) -> float:
        """Average parameter-version lag between dispatch and update."""
        if self.updates_applied == 0:
            return 0.0
        return self.total_staleness / self.updates_applied


@dataclass(order=True)
class _InFlight:
    """One outstanding event, ordered by its time on the master's heap.

    Sequential dispatch carries the finished ``outcome`` directly; parallel
    dispatch carries ``outcome=None`` plus the executor ``job_id`` to collect
    it from once this entry reaches the front of the event heap.

    With fault tolerance active, three more event kinds share the heap:
    ``failure`` (a dispatch raised a :class:`FaultError`; ``finish_time`` is
    the virtual time the failure is detected), ``straggler`` (a job whose
    finish would blow the dispatch deadline; absorbed at the cutoff), and
    ``probe`` (dispatch parked behind an open circuit breaker until its
    recovery time).  All three carry the task so no gradient work is lost.
    """

    finish_time: float
    sequence: int
    outcome: GradientOutcome | None = field(compare=False)
    client: EQCClientNode = field(compare=False)
    job_id: int = field(compare=False, default=-1)
    kind: str = field(compare=False, default="job")
    task: GradientTask | None = field(compare=False, default=None)
    failure: FaultError | None = field(compare=False, default=None)


class EQCMasterNode:
    """Coordinates asynchronous VQA training over a quantum ensemble."""

    def __init__(
        self,
        objective: VQAObjective,
        clients: Sequence[EQCClientNode],
        task_queue: CyclicTaskQueue,
        rule: AsgdRule,
        weighting: WeightingConfig,
        initial_parameters: Sequence[float],
        label: str = "EQC",
        start_time: float = 0.0,
        executor: "ParallelEnsembleExecutor | None" = None,
        health: DeviceHealthTracker | None = None,
        dispatch_deadline: float | None = None,
        min_live_devices: int = 1,
    ) -> None:
        if not clients:
            raise ValueError("the ensemble needs at least one client node")
        names = [client.name for client in clients]
        if len(set(names)) != len(names):
            raise ValueError("client names must be unique")
        if dispatch_deadline is not None and dispatch_deadline <= 0:
            raise ValueError("dispatch_deadline must be positive")
        if not 1 <= min_live_devices <= len(clients):
            raise ValueError(
                "min_live_devices must be within [1, number of clients]"
            )
        self.objective = objective
        self.clients = list(clients)
        self.task_queue = task_queue
        self.rule = rule
        self.weighting = weighting
        self.label = label
        self.state = ParameterVectorState(np.asarray(initial_parameters, dtype=float))
        self.telemetry = MasterTelemetry()
        #: Optional multiprocess executor; None keeps the in-process path.
        self._executor = executor
        self._start_time = float(start_time)
        self._p_correct: dict[str, float] = {}
        self._weights: dict[str, float] = {client.name: 1.0 for client in clients}
        #: Circuit breakers gating dispatch; None disables fault tolerance
        #: (the default path pays a couple of ``is not None`` branches only).
        self._health = health
        self.dispatch_deadline = (
            float(dispatch_deadline) if dispatch_deadline is not None else None
        )
        self.min_live_devices = int(min_live_devices)
        #: Clients still in the rotation (retirement removes them here; the
        #: full roster in ``self.clients`` is never mutated).
        self._live: list[EQCClientNode] = list(self.clients)
        #: Tasks recovered from failed/cut dispatches, served before the
        #: cyclic queue so no gradient coordinate is starved by faults.
        self._orphans: deque[GradientTask] = deque()
        #: Fleet-level fault events in occurrence order (history metadata).
        self._fleet_events: list[dict] = []
        self._fault_stats = {
            "dispatch_failures": 0,
            "stragglers_cut": 0,
            "retired_devices": 0,
            "probes": 0,
        }

    @property
    def _fault_tolerant(self) -> bool:
        return self._health is not None or self.dispatch_deadline is not None

    @property
    def health(self) -> DeviceHealthTracker | None:
        """The circuit-breaker tracker (None when fault tolerance is off)."""
        return self._health

    @property
    def live_device_names(self) -> tuple[str, ...]:
        return tuple(client.device_name for client in self._live)

    # ------------------------------------------------------------------
    @property
    def cycle_length(self) -> int:
        return self.task_queue.cycle_length

    @property
    def current_weights(self) -> dict[str, float]:
        """The most recently computed per-client weights."""
        return dict(self._weights)

    # ------------------------------------------------------------------
    def train(
        self,
        num_epochs: int | None = None,
        record_every: int = 1,
        target_updates: int | None = None,
        checkpointer: "TrainingCheckpointer | None" = None,
    ) -> TrainingHistory:
        """Run the asynchronous optimization for ``num_epochs`` epochs.

        ``target_updates`` overrides the epoch count with an exact update
        budget; when it is not a multiple of ``cycle_length`` the tail
        updates beyond the last full epoch are recorded as a final *partial*
        epoch (flagged in ``history.metadata['final_epoch_partial_updates']``)
        rather than silently dropped.

        ``checkpointer`` (see :class:`repro.persist.TrainingCheckpointer`)
        journals every committed update, writes checkpoint generations at
        epoch boundaries, and — when it carries restored state — re-enters
        the loop exactly where the interrupted run left off.  Checkpointing
        consumes no randomness and never touches the update path, so the
        trajectory is bit-identical with or without it.
        """
        if target_updates is None:
            if num_epochs is None or num_epochs < 1:
                raise ValueError("num_epochs must be >= 1")
            target_updates = num_epochs * self.cycle_length
        elif target_updates < 1:
            raise ValueError("target_updates must be >= 1")
        if record_every < 1:
            raise ValueError("record_every must be >= 1")

        history = TrainingHistory(
            label=self.label,
            device_names=tuple(client.device_name for client in self.clients),
            metadata={
                "weighting": self.weighting.describe(),
                "learning_rate": self.rule.learning_rate,
                "num_clients": len(self.clients),
            },
        )

        pending: list[_InFlight] = []
        sequence = 0
        now = self._start_time
        telemetry_on = _telemetry.enabled
        epoch_wall_start = time.time_ns() if telemetry_on else 0
        epoch_sim_start = now
        epoch_completed = 0

        restored = None
        if checkpointer is not None:
            restored = checkpointer.restore_into(self, history)
        if restored is not None:
            # Resume: the loop re-enters exactly at the heap pop the
            # interrupted run was about to perform.
            pending, sequence, now, epoch_completed, epoch_sim_start = restored
        else:
            # Initial dispatch: one task per client (Algorithm 1's first loop).
            for client in list(self._live):
                sequence += 1
                heapq.heappush(pending, self._dispatch(client, now, sequence))
        while self.telemetry.updates_applied < target_updates and pending:
            item = heapq.heappop(pending)
            now = max(now, item.finish_time)
            if item.kind != "job":
                # Fault-tolerance event (failure/straggler/probe): absorb it
                # — breaker bookkeeping, task recovery, redispatch — and move
                # on; the update path below never sees it.
                sequence = self._absorb_fault(item, now, sequence, pending)
                continue
            # Parallel dispatches park outcome=None; the gather happens here,
            # exactly where the sequential loop consumes the gradient, so the
            # update/weight/epoch bookkeeping below is shared verbatim.
            outcome = (
                item.outcome
                if item.outcome is not None
                else self._executor.collect(item.job_id)
            )
            client = item.client
            if self._health is not None:
                self._health.record_success(client.device_name, now)

            # Refresh this client's PCorrect and rebuild the ensemble weights.
            self._p_correct[client.name] = outcome.p_correct
            if self.weighting.refresh_on_every_update or not self._weights_initialized():
                self._weights = normalize_weights(self._p_correct, self.weighting.bounds)
            weight = self._weights.get(client.name, 1.0)

            # Weighted asynchronous update (Eq. 4 / Eq. 12).
            staleness = self.state.version - outcome.theta_version
            self.telemetry.total_staleness += max(0, staleness)
            self.telemetry.max_staleness = max(self.telemetry.max_staleness, staleness)
            apply_start = time.perf_counter() if telemetry_on else 0.0
            new_value = self.state.apply(
                outcome.task.parameter_index, outcome.gradient, self.rule, weight
            )
            self.telemetry.updates_applied += 1
            if checkpointer is not None:
                # Journal the committed update (or, on resume, verify the
                # replayed update bit-for-bit against its journal record).
                checkpointer.record_update(self, outcome, weight, new_value)
            if telemetry_on:
                registry = _telemetry.registry
                registry.histogram("eqc.weight_update_seconds").observe(
                    time.perf_counter() - apply_start
                )
                registry.histogram(
                    "eqc.update_staleness", bounds=(0, 1, 2, 4, 8, 16, 32)
                ).observe(max(0, staleness))

            # Epoch bookkeeping.
            if self.telemetry.updates_applied % self.cycle_length == 0:
                epoch_completed += 1
                if telemetry_on:
                    end_ns = time.time_ns()
                    _telemetry.tracer.add_span(
                        f"epoch {epoch_completed}",
                        "eqc",
                        epoch_wall_start,
                        end_ns,
                        args={"updates": self.telemetry.updates_applied},
                    )
                    _telemetry.tracer.add_sim_span(
                        f"epoch {epoch_completed}",
                        "eqc",
                        "eqc epochs",
                        epoch_sim_start,
                        now - epoch_sim_start,
                    )
                    epoch_wall_start = end_ns
                    epoch_sim_start = now
                if epoch_completed % record_every == 0 or (
                    self.telemetry.updates_applied >= target_updates
                ):
                    history.add(
                        EpochRecord(
                            epoch=epoch_completed,
                            sim_time_hours=(now - self._start_time) / SECONDS_PER_HOUR,
                            loss=self.objective.exact_loss(self.state.snapshot()),
                            parameters=self.state.snapshot(),
                            weights=dict(self._weights),
                        )
                    )

            # Hand the finishing client its next task immediately.
            if self.telemetry.updates_applied < target_updates:
                sequence += 1
                heapq.heappush(pending, self._dispatch(client, now, sequence))

            if checkpointer is not None:
                # End of iteration: the loop state is "about to pop the next
                # event", which is exactly where a restore re-enters.
                checkpointer.after_iteration(
                    self, history, pending, sequence, now, epoch_completed,
                    epoch_sim_start,
                )

        # Tail updates past the last full epoch boundary: record them as a
        # final partial epoch so truncated update budgets stay visible.
        tail_updates = self.telemetry.updates_applied - epoch_completed * self.cycle_length
        if tail_updates > 0:
            history.add(
                EpochRecord(
                    epoch=epoch_completed + 1,
                    sim_time_hours=(now - self._start_time) / SECONDS_PER_HOUR,
                    loss=self.objective.exact_loss(self.state.snapshot()),
                    parameters=self.state.snapshot(),
                    weights=dict(self._weights),
                )
            )
            history.metadata["final_epoch_partial_updates"] = tail_updates
            history.final_epoch_fraction = tail_updates / self.cycle_length

        history.total_updates = self.telemetry.updates_applied
        history.total_jobs = self.telemetry.jobs_dispatched
        history.metadata["mean_staleness"] = self.telemetry.mean_staleness
        history.metadata["max_staleness"] = self.telemetry.max_staleness
        history.metadata["circuits_executed"] = self.telemetry.circuits_executed
        if self._fault_tolerant:
            # Only the fault-tolerant configuration writes these keys, so
            # default-path history metadata stays byte-identical to the seed.
            history.metadata["fleet_events"] = list(self._fleet_events)
            history.metadata["fault_stats"] = dict(self._fault_stats)
            history.metadata["live_devices"] = list(self.live_device_names)
            if self._health is not None:
                history.metadata["breakers"] = self._health.summary()
        if telemetry_on:
            self.publish()
        return history

    def publish(self, registry=None, prefix: str = "eqc") -> None:
        """Write the master's run counters into a metrics registry as gauges."""
        if registry is None:
            registry = _telemetry.registry
        telemetry = self.telemetry
        registry.gauge(f"{prefix}.updates_applied").set(telemetry.updates_applied)
        registry.gauge(f"{prefix}.jobs_dispatched").set(telemetry.jobs_dispatched)
        registry.gauge(f"{prefix}.circuits_executed").set(telemetry.circuits_executed)
        registry.gauge(f"{prefix}.mean_staleness").set(telemetry.mean_staleness)
        registry.gauge(f"{prefix}.max_staleness").set(telemetry.max_staleness)

    # ------------------------------------------------------------------
    def _next_task(self) -> GradientTask:
        """Orphaned tasks (failed/cut dispatches) go out before new ones."""
        if self._orphans:
            return self._orphans.popleft()
        return self.task_queue.next_task()

    def _dispatch(self, client: EQCClientNode, now: float, sequence: int) -> _InFlight:
        """Assign the next task to ``client`` at time ``now``."""
        return self._dispatch_task(client, self._next_task(), now, sequence)

    def _dispatch_task(
        self, client: EQCClientNode, task: GradientTask, now: float, sequence: int
    ) -> _InFlight:
        """Dispatch one specific task, absorbing faults into heap events."""
        device = client.device_name
        if self._health is not None and not self._health.allow(device, now):
            # Breaker open: park the dispatch until the recovery time; the
            # retry becomes the breaker's probe job.
            self._fault_stats["probes"] += 1
            return _InFlight(
                finish_time=max(now, self._health.retry_at(device)),
                sequence=sequence,
                outcome=None,
                client=client,
                kind="probe",
                task=task,
            )
        if self._executor is not None:
            # The worker answers with the previewed finish time (and circuit
            # count, so dispatch-time telemetry matches the sequential path)
            # and simulates the job in the background.
            job_id, finish_time, num_circuits = self._executor.submit(
                client.device_name,
                task,
                self.state.snapshot(),
                now,
                self.state.version,
            )
            self.telemetry.jobs_dispatched += 1
            self.telemetry.circuits_executed += num_circuits
            if (
                self.dispatch_deadline is not None
                and finish_time - now > self.dispatch_deadline
            ):
                # Straggler: the previewed turnaround blows the deadline, so
                # the master cuts the job at the cutoff instead of waiting
                # (the outcome is still collected there, then discarded, to
                # keep the per-device worker protocol serialized).
                return _InFlight(
                    finish_time=now + self.dispatch_deadline,
                    sequence=sequence,
                    outcome=None,
                    client=client,
                    job_id=job_id,
                    kind="straggler",
                    task=task,
                )
            return _InFlight(
                finish_time=finish_time,
                sequence=sequence,
                outcome=None,
                client=client,
                job_id=job_id,
            )
        try:
            outcome = client.execute_task(
                task,
                theta=self.state.snapshot(),
                submit_time=now,
                theta_version=self.state.version,
            )
        except FaultError as exc:
            # The failure is only *known* at its virtual detection time;
            # park it on the heap so breaker/retire bookkeeping happens in
            # event order, interleaved correctly with other completions.
            return _InFlight(
                finish_time=max(now, exc.detect_time),
                sequence=sequence,
                outcome=None,
                client=client,
                kind="failure",
                task=task,
                failure=exc,
            )
        self.telemetry.jobs_dispatched += 1
        self.telemetry.circuits_executed += outcome.num_circuits
        if (
            self.dispatch_deadline is not None
            and outcome.finish_time - now > self.dispatch_deadline
        ):
            return _InFlight(
                finish_time=now + self.dispatch_deadline,
                sequence=sequence,
                outcome=None,
                client=client,
                kind="straggler",
                task=task,
            )
        return _InFlight(
            finish_time=outcome.finish_time,
            sequence=sequence,
            outcome=outcome,
            client=client,
        )

    # ------------------------------------------------------------------
    # graceful degradation
    # ------------------------------------------------------------------
    def _absorb_fault(
        self, item: _InFlight, now: float, sequence: int, pending: list
    ) -> int:
        """Process one non-job heap event; returns the updated sequence."""
        client = item.client
        device = client.device_name
        if item.kind == "failure":
            exc = item.failure
            self._fault_stats["dispatch_failures"] += 1
            permanent = isinstance(exc, DeviceOutageError) and exc.permanent
            if self._health is not None:
                if permanent:
                    self._health.mark_dead(device, now)
                else:
                    self._health.record_failure(device, now)
            self._record_fleet_event(
                "job_failure", device, now, detail=type(exc).__name__
            )
            self._orphans.append(item.task)
            dead = permanent or (
                self._health is not None and self._health.is_dead(device)
            )
            if dead:
                self._retire(client, now, reason=type(exc).__name__)
                return sequence
            sequence += 1
            heapq.heappush(pending, self._dispatch(client, now, sequence))
            return sequence
        if item.kind == "straggler":
            self._fault_stats["stragglers_cut"] += 1
            if item.job_id >= 0:
                # Drain the worker's outcome (and discard it) so the next
                # submit to this device stays strictly serialized.
                self._executor.collect(item.job_id)
            if self._health is not None:
                self._health.record_failure(device, now)
            self._record_fleet_event("straggler_cut", device, now)
            self._orphans.append(item.task)
            if self._health is not None and self._health.is_dead(device):
                self._retire(client, now, reason="straggler breaker exhausted")
                return sequence
            sequence += 1
            heapq.heappush(pending, self._dispatch(client, now, sequence))
            return sequence
        if item.kind == "probe":
            if client in self._live:
                sequence += 1
                heapq.heappush(
                    pending, self._dispatch_task(client, item.task, now, sequence)
                )
            else:
                self._orphans.append(item.task)
            return sequence
        raise RuntimeError(f"unknown in-flight event kind {item.kind!r}")

    def _retire(self, client: EQCClientNode, now: float, reason: str) -> None:
        """Remove a dead device from the rotation; training continues.

        The retired client's ``PCorrect`` entry is dropped and the ensemble
        weights renormalize over the survivors, so the dead device's share of
        the update mass redistributes instead of silently decaying.
        """
        if client not in self._live:
            return
        self._live.remove(client)
        self._p_correct.pop(client.name, None)
        self._fault_stats["retired_devices"] += 1
        if self._p_correct:
            self._weights = normalize_weights(self._p_correct, self.weighting.bounds)
        self._record_fleet_event(
            "fleet_shrink", client.device_name, now, detail=reason
        )
        if _telemetry.enabled:
            _telemetry.registry.counter("eqc.fleet_shrink").inc()
            _telemetry.registry.gauge("eqc.live_devices").set(len(self._live))
        if len(self._live) < self.min_live_devices:
            raise FleetExhaustedError(
                f"only {len(self._live)} live devices remain "
                f"(min_live_devices={self.min_live_devices})",
                detect_time=now,
            )

    def _record_fleet_event(
        self, kind: str, device: str, now: float, detail: str = ""
    ) -> None:
        self._fleet_events.append(
            {"kind": kind, "device": device, "time": float(now), "detail": detail}
        )
        if _telemetry.enabled:
            _telemetry.registry.counter(
                "eqc.fault_events", kind=kind, device=device
            ).inc()

    def _weights_initialized(self) -> bool:
        return len(self._p_correct) == len(self._live)
