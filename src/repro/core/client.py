"""The EQC client node (paper Algorithm 2).

One client node is paired with one QPU.  Its responsibilities are exactly the
paper's list: it receives the circuit template and loss definition, transpiles
the template once for its device's topology, and then, for every assigned
gradient task, it

1. builds the forward/backward (parameter-shift) circuits from the master's
   current parameter snapshot,
2. computes the ``PCorrect`` estimate from the transpiled footprint and the
   device's *reported* calibration at submission time,
3. submits the circuits to the cloud provider and, once results return,
   processes the two probability distributions through the loss into the
   scalar gradient,
4. hands the gradient and its ``PCorrect`` back to the master.

In the discrete-event reproduction the submit-and-wait is collapsed into a
single call that returns a :class:`GradientOutcome` stamped with the job's
simulated finish time; the master's event loop replays those stamps in order,
which realizes the asynchrony of the real Ray-based system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

from ..backends.cache import TranspileCache
from ..cloud.provider import CloudProvider
from ..devices.qpu import QPU, CircuitFootprint
from ..transpiler.transpile import TranspileResult
from ..vqa.tasks import GradientTask
from .objective import GradientJobSpec, VQAObjective
from .weighting import estimate_p_correct

__all__ = ["GradientOutcome", "EQCClientNode"]


@dataclass(frozen=True)
class GradientOutcome:
    """What a client returns to the master for one completed task."""

    client_name: str
    device_name: str
    task: GradientTask
    gradient: float
    p_correct: float
    submit_time: float
    finish_time: float
    theta_version: int
    num_circuits: int
    success_probability_truth: float = float("nan")

    @property
    def turnaround_seconds(self) -> float:
        return max(0.0, self.finish_time - self.submit_time)


class EQCClientNode:
    """A client node managing one QPU."""

    def __init__(
        self,
        objective: VQAObjective,
        qpu: QPU,
        provider: CloudProvider,
        shots: int = 8192,
        name: str | None = None,
        transpile_cache: TranspileCache | None = None,
    ) -> None:
        self.objective = objective
        self.qpu = qpu
        self.provider = provider
        self.shots = int(shots)
        self.name = name or f"client_{qpu.name}"
        #: Shared structure-keyed cache (backend layer); clients of one
        #: ensemble hand the same instance around so a template transpiled
        #: for a topology is transpiled exactly once fleet-wide.
        self.transpile_cache = transpile_cache if transpile_cache is not None else TranspileCache()
        #: Per-client view keyed by the objective's template keys (kept so
        #: ``representative_footprint`` can summarize what *this* client ran).
        self._transpile_cache: dict[Hashable, TranspileResult] = {}
        self.jobs_completed = 0

    # ------------------------------------------------------------------
    @property
    def device_name(self) -> str:
        return self.qpu.name

    def _transpiled(self, key: Hashable, template) -> TranspileResult:
        """Transpile a template once per device via the shared cache."""
        if key not in self._transpile_cache:
            self._transpile_cache[key] = self.transpile_cache.get_or_transpile(
                template, self.qpu.topology
            )
        return self._transpile_cache[key]

    def representative_footprint(self, job: GradientJobSpec | None = None) -> CircuitFootprint:
        """The footprint used for weighting and execution-noise scaling.

        The per-group footprints of one loss evaluation are averaged into a
        single representative footprint: ``PCorrect`` is computed once per
        circuit induction in the paper, and our devices scale their noise
        from the same structure.
        """
        if job is not None:
            keys = list(dict.fromkeys(zip(job.template_keys, job.templates)))
        else:
            keys = list(self._transpile_cache.items())
            if not keys:
                raise ValueError("client has no transpiled templates yet")
            results = [value.footprint for _, value in keys]
            return _average_footprints(results)
        results = [self._transpiled(key, template).footprint for key, template in keys]
        return _average_footprints(results)

    # ------------------------------------------------------------------
    def current_p_correct(self, job: GradientJobSpec, now: float) -> float:
        """Eq. 2 estimate from the freshest published properties at ``now``.

        The estimate uses :meth:`QPU.estimated_calibration`, i.e. the device
        properties as republished every ``properties_refresh_hours`` — the
        real-time adaptivity the paper's Fig. 5 demonstrates — but never the
        device's latent (cross-talk, mid-burst) behaviour.

        The properties timestamp is routed through the provider: during an
        injected calibration blackout the published view freezes at the
        window start, so the estimate goes stale exactly as against a real
        provider whose properties endpoint lags.
        """
        view_time = self.provider.properties_view_time(self.qpu.name, now)
        calibration = self.qpu.estimated_calibration(view_time)
        return estimate_p_correct(calibration, self.representative_footprint(job))

    def execute_task(
        self,
        task: GradientTask,
        theta: Sequence[float],
        submit_time: float,
        theta_version: int = 0,
        job_spec: GradientJobSpec | None = None,
    ) -> GradientOutcome:
        """Serve one gradient task end to end (Algorithm 2 body).

        ``job_spec`` lets a caller that already built the task's circuit
        batch (the parallel worker's timing preview) hand it in instead of
        rebuilding; building it here from the same ``(task, theta)`` pair
        produces an identical batch.
        """
        if job_spec is None:
            job_spec = self.objective.build_job(task, theta)

        # Transpile every distinct template once (cached across tasks).
        for key, template in zip(job_spec.template_keys, job_spec.templates):
            self._transpiled(key, template)

        footprint = self.representative_footprint(job_spec)
        p_correct = self.current_p_correct(job_spec, submit_time)

        cloud_job = self.provider.submit(
            device_name=self.qpu.name,
            circuits=list(job_spec.circuits),
            footprint=footprint,
            now=submit_time,
            shots=self.shots,
        )
        counts = [result.counts for result in cloud_job.results]
        gradient = self.objective.gradient_from_counts(task, counts)

        truth = float("nan")
        if cloud_job.results:
            truth = float(
                cloud_job.results[0].metadata.get("success_probability", float("nan"))
            )

        self.jobs_completed += 1
        return GradientOutcome(
            client_name=self.name,
            device_name=self.qpu.name,
            task=task,
            gradient=float(gradient),
            p_correct=float(p_correct),
            submit_time=float(submit_time),
            finish_time=float(cloud_job.finish_time),
            theta_version=int(theta_version),
            num_circuits=len(job_spec.circuits),
            success_probability_truth=truth,
        )


def _average_footprints(footprints: Sequence[CircuitFootprint]) -> CircuitFootprint:
    """Element-wise average of several footprints (rounded to integers)."""
    if not footprints:
        raise ValueError("need at least one footprint")
    n = len(footprints)
    used_qubits: set[int] = set()
    used_couplings: set[tuple[int, int]] = set()
    for fp in footprints:
        used_qubits.update(fp.used_qubits)
        used_couplings.update(fp.used_couplings)
    return CircuitFootprint(
        num_single_qubit_gates=round(sum(fp.num_single_qubit_gates for fp in footprints) / n),
        num_two_qubit_gates=round(sum(fp.num_two_qubit_gates for fp in footprints) / n),
        critical_depth=round(sum(fp.critical_depth for fp in footprints) / n),
        num_measurements=round(sum(fp.num_measurements for fp in footprints) / n),
        used_qubits=tuple(sorted(used_qubits)),
        used_couplings=tuple(sorted(used_couplings)),
    )
