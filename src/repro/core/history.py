"""Training histories: what every trainer (EQC, single-device, ideal) records.

Histories are the common currency of the evaluation: the Fig. 6 / Fig. 9 /
Fig. 11 / Fig. 12 curves are epoch-indexed loss traces, the epochs-per-hour
bars come from the time stamps, and the error-vs-ground numbers come from the
tail of the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..cloud.clock import SECONDS_PER_HOUR

__all__ = ["EpochRecord", "TrainingHistory"]


@dataclass(frozen=True)
class EpochRecord:
    """State of a training run at one epoch boundary.

    Attributes:
        epoch: 1-based epoch index.
        sim_time_hours: virtual wall-clock time when the epoch completed.
        loss: exact (noise-free) loss of the current parameters — the
            quantity plotted on the paper's energy/cost axes.
        parameters: snapshot of the parameter vector.
        weights: the per-device weights in force when the epoch completed
            (empty for single-device and ideal baselines).
        noisy_loss: optional running estimate of the loss as measured on
            hardware during the epoch (NaN when not tracked).
    """

    epoch: int
    sim_time_hours: float
    loss: float
    parameters: tuple[float, ...]
    weights: Mapping[str, float] = field(default_factory=dict)
    noisy_loss: float = float("nan")


@dataclass
class TrainingHistory:
    """A complete training trace plus run-level metadata."""

    label: str
    records: list[EpochRecord] = field(default_factory=list)
    device_names: tuple[str, ...] = ()
    total_updates: int = 0
    total_jobs: int = 0
    terminated_early: bool = False
    termination_reason: str = ""
    #: Completed fraction of the last recorded epoch.  1.0 for ordinary
    #: histories; a truncated update budget (``target_updates`` not a
    #: multiple of the cycle) records its tail as a partial final epoch and
    #: sets this so throughput metrics do not count it as a full epoch.
    final_epoch_fraction: float = 1.0
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add(self, record: EpochRecord) -> None:
        if self.records and record.epoch <= self.records[-1].epoch:
            raise ValueError("epoch records must be appended in increasing epoch order")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def epochs(self) -> np.ndarray:
        return np.array([r.epoch for r in self.records], dtype=int)

    @property
    def losses(self) -> np.ndarray:
        return np.array([r.loss for r in self.records], dtype=float)

    @property
    def times_hours(self) -> np.ndarray:
        return np.array([r.sim_time_hours for r in self.records], dtype=float)

    @property
    def final_parameters(self) -> tuple[float, ...]:
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1].parameters

    # ------------------------------------------------------------------
    def final_loss(self, tail: int = 10) -> float:
        """Average loss over the last ``tail`` epochs (robust to jitter)."""
        if not self.records:
            raise ValueError("history is empty")
        losses = self.losses[-max(1, tail):]
        return float(np.mean(losses))

    def best_loss(self) -> float:
        """The minimum loss reached at any recorded epoch."""
        if not self.records:
            raise ValueError("history is empty")
        return float(np.min(self.losses))

    def total_hours(self) -> float:
        """Virtual wall-clock duration of the recorded run."""
        if not self.records:
            return 0.0
        return float(self.records[-1].sim_time_hours)

    def epochs_per_hour(self) -> float:
        """Average training throughput (the paper's Fig. 6 right panel).

        Uses the last recorded epoch number (not the record count) so
        sub-sampled histories (``record_every > 1``) report the true rate,
        and discounts a partial final epoch by ``final_epoch_fraction`` so
        a truncated update budget cannot inflate the rate.
        """
        hours = self.total_hours()
        if hours <= 0:
            return float("inf")
        if not self.records:
            return 0.0
        effective_epochs = self.records[-1].epoch - 1.0 + self.final_epoch_fraction
        return effective_epochs / hours

    def error_vs(self, reference: float, tail: int = 10) -> float:
        """Relative error of the converged loss against a reference value.

        Matches the paper's error metric: deviation of the obtained energy
        from the ideal ground energy, normalized by its magnitude, in
        percent-friendly fractional form.
        """
        final = self.final_loss(tail)
        denom = abs(reference) if reference != 0 else 1.0
        return abs(final - reference) / denom

    def convergence_epoch(
        self,
        reference: float,
        tolerance: float = 0.05,
        patience: int = 5,
    ) -> int | None:
        """First epoch from which the loss stays within ``tolerance`` of ``reference``.

        ``tolerance`` is relative to ``|reference|``; the loss must remain
        inside the band for ``patience`` consecutive records to count, which
        filters out single lucky epochs.  Returns ``None`` when the run never
        converges (e.g. terminated single-device experiments).
        """
        if not self.records:
            return None
        denominator = abs(reference) if reference != 0 else 1.0
        within = np.abs(self.losses - reference) / denominator <= tolerance
        run = 0
        for index, ok in enumerate(within):
            run = run + 1 if ok else 0
            if run >= patience:
                return int(self.records[index - patience + 1].epoch)
        return None

    def summary(self, reference: float | None = None) -> dict[str, float | str | None]:
        """A compact dictionary used by benchmark reporting."""
        out: dict[str, float | str | None] = {
            "label": self.label,
            "epochs": float(len(self.records)),
            "total_hours": self.total_hours(),
            "epochs_per_hour": self.epochs_per_hour(),
            "final_loss": self.final_loss() if self.records else float("nan"),
            "terminated_early": str(self.terminated_early),
        }
        if reference is not None and self.records:
            out["error_vs_reference"] = self.error_vs(reference)
            out["convergence_epoch"] = self.convergence_epoch(reference)
        return out
