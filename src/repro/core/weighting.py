"""The EQC adaptive weighting system (paper Section IV).

Each client node computes an analytic estimate ``PCorrect`` of its device's
probability of error-free execution (Eq. 2) from the *reported* calibration
snapshot and the transpiled circuit's structure.  The master then linearly
rescales the ensemble's current ``PCorrect`` values into a configured weight
band (e.g. ``[0.5, 1.5]``) and multiplies each incoming gradient's step size
by its client's weight (Eq. 4) — so devices that are currently trustworthy
move the parameters further, while drifting or poorly-connected devices are
dampened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..devices.qpu import CircuitFootprint, success_probability
from ..noise.calibration import CalibrationSnapshot

__all__ = [
    "estimate_p_correct",
    "WeightBounds",
    "WeightingConfig",
    "normalize_weights",
    "UNWEIGHTED",
    "BOUNDS_TIGHT",
    "BOUNDS_MODERATE",
    "BOUNDS_WIDE",
]


def estimate_p_correct(
    calibration: CalibrationSnapshot,
    footprint: CircuitFootprint,
) -> float:
    """The paper's Eq. 2 estimate of error-free execution probability.

    Identical in form to the device model's ground truth, but evaluated on
    the *reported* (possibly stale) calibration and without the latent
    cross-talk term — exactly the information a real client has access to.
    """
    return success_probability(calibration, footprint, crosstalk=0.0, connectivity=0.0)


@dataclass(frozen=True)
class WeightBounds:
    """A closed interval ``[low, high]`` that weights are normalized into."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0:
            raise ValueError("weight lower bound must be non-negative")
        if self.high < self.low:
            raise ValueError("weight upper bound must be >= lower bound")

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def width(self) -> float:
        return self.high - self.low

    def __str__(self) -> str:
        return f"[{self.low:g}, {self.high:g}]"


#: The weighting configurations evaluated in the paper (Fig. 9 / Fig. 12).
UNWEIGHTED = None
BOUNDS_TIGHT = WeightBounds(0.75, 1.25)
BOUNDS_MODERATE = WeightBounds(0.5, 1.5)
BOUNDS_WIDE = WeightBounds(0.25, 1.75)


@dataclass(frozen=True)
class WeightingConfig:
    """How the master converts ``PCorrect`` values into gradient weights.

    Attributes:
        bounds: the band weights are normalized into; ``None`` disables
            weighting entirely (every gradient gets weight 1, the paper's
            "no weighting system" baseline).
        refresh_on_every_update: when True (default), ``PCorrect`` values are
            recomputed at each job submission so calibration changes and
            drifting transpilation costs are tracked in real time; when
            False the values computed at ensemble-formation time are frozen
            (the ablation in ``benchmarks/bench_ablation_drift.py``).
    """

    bounds: WeightBounds | None = BOUNDS_MODERATE
    refresh_on_every_update: bool = True

    @property
    def enabled(self) -> bool:
        return self.bounds is not None

    def describe(self) -> str:
        if not self.enabled:
            return "unweighted"
        return f"weights {self.bounds}"


def normalize_weights(
    p_correct_by_client: Mapping[str, float],
    bounds: WeightBounds | None,
) -> dict[str, float]:
    """Linearly rescale the ensemble's ``PCorrect`` values into ``bounds``.

    Follows the paper's description (Section V-D): the maximum ``PCorrect``
    maps to the upper bound, the minimum to the lower bound, everything else
    linearly in between.  With no weighting every client gets 1.0; when all
    values coincide (for example a single-client ensemble) every client gets
    the midpoint of the band.
    """
    if not p_correct_by_client:
        return {}
    if bounds is None:
        return {name: 1.0 for name in p_correct_by_client}

    values = list(p_correct_by_client.values())
    for name, value in p_correct_by_client.items():
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"PCorrect for {name!r} is {value}, outside [0, 1]")
    low, high = min(values), max(values)
    if high - low < 1e-12:
        return {name: bounds.midpoint for name in p_correct_by_client}
    scale = bounds.width / (high - low)
    return {
        name: bounds.low + (value - low) * scale
        for name, value in p_correct_by_client.items()
    }
