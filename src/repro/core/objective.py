"""Gradient objectives: what a client node actually runs for one task.

A :class:`VQAObjective` turns a :class:`~repro.vqa.tasks.GradientTask` plus a
parameter snapshot into a batch of bound circuits, and later turns the
measured counts back into a scalar gradient.  Two concrete objectives cover
the paper's applications:

* :class:`EnergyObjective` — VQE and QAOA: forward/backward parameter-shift
  circuits for every qubit-wise-commuting measurement group of the
  Hamiltonian.
* :class:`QnnObjective` — QNN training: a centre evaluation plus the
  forward/backward pair for the assigned data point, combined through the
  squared-loss chain rule.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Hashable, Sequence

from ..circuit.circuit import QuantumCircuit
from ..hamiltonian.expectation import EnergyEstimator
from ..simulator.result import Counts
from ..vqa.gradient import gradient_from_energies, shifted_parameter_vectors
from ..vqa.qnn import QNNProblem
from ..vqa.tasks import GradientTask

__all__ = ["GradientJobSpec", "VQAObjective", "EnergyObjective", "QnnObjective"]


@dataclass(frozen=True)
class GradientJobSpec:
    """The circuits a client must run to serve one gradient task.

    ``template_keys[i]`` identifies the parameterized template circuit that
    ``circuits[i]`` was bound from; clients use it to cache one transpilation
    per template per device.
    """

    circuits: tuple[QuantumCircuit, ...]
    template_keys: tuple[Hashable, ...]
    templates: tuple[QuantumCircuit, ...]

    def __post_init__(self) -> None:
        if not (len(self.circuits) == len(self.template_keys) == len(self.templates)):
            raise ValueError("circuits, template_keys and templates must align")
        if not self.circuits:
            raise ValueError("a gradient job needs at least one circuit")


class VQAObjective(ABC):
    """Interface between the EQC scheduler and a concrete VQA loss."""

    @property
    @abstractmethod
    def num_parameters(self) -> int:
        """Number of trainable parameters."""

    @abstractmethod
    def build_job(self, task: GradientTask, theta: Sequence[float]) -> GradientJobSpec:
        """Bound circuits needed to differentiate ``task`` at ``theta``."""

    def circuits_per_job(self, task: GradientTask) -> int:
        """How many circuits :meth:`build_job` will produce for ``task``.

        Queue timing depends only on the circuit *count*, never on the bound
        angles, so the parallel executor answers finish-time previews from
        this without building (or binding) a single circuit.  Subclasses with
        a cheaper answer than actually building the job should override.
        """
        return len(self.build_job(task, [0.0] * self.num_parameters).circuits)

    @abstractmethod
    def gradient_from_counts(self, task: GradientTask, counts: Sequence[Counts]) -> float:
        """Recombine the measured counts (same order as the job) into d loss/d theta."""

    @abstractmethod
    def exact_loss(self, theta: Sequence[float]) -> float:
        """Noise-free loss at ``theta`` (history tracking / convergence plots)."""


class EnergyObjective(VQAObjective):
    """VQE/QAOA objective: minimize ``<H>`` of a parameterized ansatz."""

    def __init__(self, estimator: EnergyEstimator) -> None:
        self.estimator = estimator
        self._templates = tuple(estimator.template_circuits())
        self._template_keys = tuple(
            ("group", index) for index in range(len(self._templates))
        )

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return self.estimator.num_parameters

    @property
    def num_groups(self) -> int:
        return self.estimator.num_groups

    def build_job(self, task: GradientTask, theta: Sequence[float]) -> GradientJobSpec:
        pair = shifted_parameter_vectors(theta, task.parameter_index)
        forward = self.estimator.measurement_circuits(pair.forward)
        backward = self.estimator.measurement_circuits(pair.backward)
        circuits = tuple(forward) + tuple(backward)
        keys = self._template_keys + self._template_keys
        templates = self._templates + self._templates
        return GradientJobSpec(circuits=circuits, template_keys=keys, templates=templates)

    def circuits_per_job(self, task: GradientTask) -> int:
        return 2 * self.estimator.num_groups

    def gradient_from_counts(self, task: GradientTask, counts: Sequence[Counts]) -> float:
        groups = self.estimator.num_groups
        if len(counts) != 2 * groups:
            raise ValueError(
                f"expected {2 * groups} Counts objects (forward+backward), got {len(counts)}"
            )
        energy_forward = self.estimator.energy_from_counts(counts[:groups])
        energy_backward = self.estimator.energy_from_counts(counts[groups:])
        return gradient_from_energies(energy_forward, energy_backward)

    def exact_loss(self, theta: Sequence[float]) -> float:
        return self.estimator.exact_energy(theta)


class QnnObjective(VQAObjective):
    """QNN objective: mean squared error of ``<Z_0>`` against +/-1 labels."""

    def __init__(self, problem: QNNProblem) -> None:
        self.problem = problem

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return self.problem.num_parameters

    def _estimator(self, task: GradientTask) -> EnergyEstimator:
        if task.data_index is None:
            raise ValueError("QNN tasks must carry a data_index")
        return self.problem.estimator_for(task.data_index)

    def build_job(self, task: GradientTask, theta: Sequence[float]) -> GradientJobSpec:
        estimator = self._estimator(task)
        pair = shifted_parameter_vectors(theta, task.parameter_index)
        centre = estimator.measurement_circuits(list(theta))
        forward = estimator.measurement_circuits(pair.forward)
        backward = estimator.measurement_circuits(pair.backward)
        groups = estimator.num_groups
        keys = tuple(
            (task.data_index, "group", index % groups)
            for index in range(3 * groups)
        )
        templates = tuple(estimator.template_circuits()) * 3
        return GradientJobSpec(
            circuits=tuple(centre) + tuple(forward) + tuple(backward),
            template_keys=keys,
            templates=templates,
        )

    def circuits_per_job(self, task: GradientTask) -> int:
        return 3 * self._estimator(task).num_groups

    def gradient_from_counts(self, task: GradientTask, counts: Sequence[Counts]) -> float:
        estimator = self._estimator(task)
        groups = estimator.num_groups
        if len(counts) != 3 * groups:
            raise ValueError(
                f"expected {3 * groups} Counts objects (centre+forward+backward), "
                f"got {len(counts)}"
            )
        prediction = estimator.energy_from_counts(counts[:groups])
        forward = estimator.energy_from_counts(counts[groups : 2 * groups])
        backward = estimator.energy_from_counts(counts[2 * groups :])
        inner = gradient_from_energies(forward, backward)
        label = self.problem.dataset.labels[task.data_index]
        return 2.0 * (prediction - label) * inner

    def exact_loss(self, theta: Sequence[float]) -> float:
        return self.problem.dataset_loss(theta)
