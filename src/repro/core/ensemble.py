"""The EQC ensemble facade: one call from problem to training history.

:class:`EQCEnsemble` wires together the whole stack — Table I devices, the
cloud provider, one client node per device, and the master node — behind a
single ``train`` call, which is the "virtualized quantum backend" interface
the paper proposes.  :class:`EQCConfig` collects every knob the evaluation
sweeps (fleet composition, shots, learning rate, weight bounds, seeds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..backends.cache import TranspileCache
from ..cloud.provider import CloudProvider
from ..cloud.queueing import QueueModel
from ..devices.catalog import DEFAULT_VQE_FLEET, build_fleet
from ..devices.qpu import QPU
from ..faults.health import DeviceHealthTracker
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy
from ..sched.policies import SchedulingPolicy
from ..sched.scheduler import CloudScheduler
from ..sched.workload import WorkloadGenerator
from ..telemetry import TELEMETRY as _telemetry
from ..hamiltonian.expectation import EnergyEstimator
from ..vqa.optimizer import AsgdRule
from ..vqa.tasks import CyclicTaskQueue, vqe_task_cycle
from .client import EQCClientNode
from .history import TrainingHistory
from .master import EQCMasterNode
from .objective import EnergyObjective, VQAObjective
from .weighting import BOUNDS_MODERATE, WeightBounds, WeightingConfig

__all__ = ["EQCConfig", "EQCEnsemble"]


@dataclass(frozen=True)
class EQCConfig:
    """Configuration of one EQC training run.

    Attributes:
        device_names: Table I devices forming the ensemble (default: the
            10-device VQE fleet).
        shots: measurement shots per circuit (the paper uses 8192).
        learning_rate: ASGD step size ``alpha`` (the paper uses 0.1).
        weight_bounds: weight normalization band; ``None`` disables weighting.
        refresh_weights: recompute ``PCorrect`` at every job (True) or freeze
            the values captured at ensemble formation (False, ablation).
        seed: seed for the provider's queue randomness.
        label: history label (defaults to an auto-generated description).
        queue_models: optional per-device queue overrides.
        scheduling_policy: a :class:`~repro.sched.policies.SchedulingPolicy`
            (or registry name like ``"fifo"``/``"fair_share"``); any non-None
            value routes jobs through the discrete-event scheduler instead of
            the statistical queue fallback.
        background_tenants: size of the simulated tenant community competing
            for the fleet (>0 implies the scheduler, FIFO unless a policy is
            set).
        tenant_jobs_per_hour: per-tenant submission rate for the background
            workload.
        parallel_workers: number of worker processes executing client steps;
            0 or 1 (the default) keeps the sequential in-process path, which
            is bit-exact with every pinned golden history.  Parallel runs
            produce the same histories — the workers replay each device's
            seeded streams exactly — but incompatible with the discrete-event
            scheduler (its event kernel is shared across devices).
        parallel_start_method: multiprocessing start method for the worker
            pool (``"fork"``/``"spawn"``/``"forkserver"``; None uses the
            platform default).
        fault_plan: deterministic chaos scenario (see
            :class:`~repro.faults.FaultPlan`); ``None`` or an empty plan
            keeps the fault-free path bit-exact.  Device-level faults are
            incompatible with the shared-kernel scheduler (inject outages
            through :meth:`CloudScheduler.inject_outage` there) and with
            ``parallel_workers > 1`` (use ``worker_crashes`` for parallel
            chaos).
        retry_policy: provider retry/backoff/deadline policy for transient
            failures; ``None`` uses the default when faults are enabled.
        dispatch_deadline: master-side straggler cutoff — a dispatched job
            whose turnaround would exceed this many virtual seconds is cut
            and its task redispatched.
        min_live_devices: training aborts with ``FleetExhaustedError`` when
            fewer devices remain live after retirements.
        checkpoint_every: write a resume-exact checkpoint every this many
            completed epochs (requires ``run_store``); ``None`` (the
            default) disables durability entirely — no journal, no run
            directory, trajectories bit-identical to the seed.  Incompatible
            with the discrete-event scheduler and ``parallel_workers > 1``
            (kernel/worker state lives outside the checkpointable surface).
        run_store: root directory of the persistent run store
            (:class:`repro.persist.RunStore`) this run registers into.
        checkpoint_retention: checkpoint generations to keep on disk; older
            generations are deleted after each new checkpoint, and recovery
            falls back one generation when the newest is corrupted.
    """

    device_names: tuple[str, ...] = DEFAULT_VQE_FLEET
    shots: int = 8192
    learning_rate: float = 0.1
    weight_bounds: WeightBounds | None = BOUNDS_MODERATE
    refresh_weights: bool = True
    seed: int = 0
    label: str = ""
    queue_models: dict[str, QueueModel] | None = None
    scheduling_policy: SchedulingPolicy | str | None = None
    background_tenants: int = 0
    tenant_jobs_per_hour: float = 1.0
    parallel_workers: int = 0
    parallel_start_method: str | None = None
    fault_plan: FaultPlan | None = None
    retry_policy: RetryPolicy | None = None
    dispatch_deadline: float | None = None
    min_live_devices: int = 1
    checkpoint_every: int | None = None
    run_store: str | None = None
    checkpoint_retention: int = 3

    def __post_init__(self) -> None:
        if not self.device_names:
            raise ValueError("the ensemble needs at least one device")
        if self.shots < 1:
            raise ValueError("shots must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.background_tenants < 0:
            raise ValueError("background_tenants must be non-negative")
        if self.tenant_jobs_per_hour <= 0:
            raise ValueError("tenant_jobs_per_hour must be positive")
        if self.parallel_workers < 0:
            raise ValueError("parallel_workers must be non-negative")
        if self.parallel_start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(
                "parallel_start_method must be one of "
                "None, 'fork', 'spawn', 'forkserver'"
            )
        if self.parallel_workers > 1 and self.uses_scheduler:
            raise ValueError(
                "parallel_workers > 1 is incompatible with the discrete-event "
                "scheduler: its event kernel is shared across devices and "
                "cannot be partitioned over worker processes"
            )
        if self.dispatch_deadline is not None and self.dispatch_deadline <= 0:
            raise ValueError("dispatch_deadline must be positive")
        if not 1 <= self.min_live_devices <= len(self.device_names):
            raise ValueError(
                "min_live_devices must be within [1, number of devices]"
            )
        if self.retry_policy is not None and not self.faults_enabled:
            raise ValueError(
                "retry_policy requires a fault_plan with device-level faults"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.checkpoint_retention < 1:
            raise ValueError("checkpoint_retention must be >= 1")
        if (self.checkpoint_every is None) != (self.run_store is None):
            raise ValueError(
                "checkpoint_every and run_store must be set together: "
                "the checkpoint cadence needs a run store to write into, "
                "and a run store without a cadence would never checkpoint "
                f"(got checkpoint_every={self.checkpoint_every!r}, "
                f"run_store={self.run_store!r})"
            )
        if self.checkpointing_enabled:
            if self.uses_scheduler:
                raise ValueError(
                    "checkpointing is incompatible with the discrete-event "
                    "scheduler: the shared event kernel's state lives outside "
                    "the checkpointable surface"
                )
            if self.parallel_workers > 1:
                raise ValueError(
                    "checkpointing is incompatible with parallel_workers > 1: "
                    "worker-process state cannot be captured mid-run (use the "
                    "sequential path for durable runs)"
                )
        if self.faults_enabled:
            plan = self.fault_plan
            if plan.has_device_faults and self.uses_scheduler:
                raise ValueError(
                    "device-level fault injection is incompatible with the "
                    "shared-kernel scheduler path: inject outages through "
                    "CloudScheduler.inject_outage / apply_fault_plan instead"
                )
            if plan.has_device_faults and self.parallel_workers > 1:
                raise ValueError(
                    "device-level fault injection is incompatible with "
                    "parallel_workers > 1 (the timing preview cannot replay "
                    "injector streams); use worker_crashes for parallel chaos"
                )
            if plan.worker_crashes and self.parallel_workers <= 1:
                raise ValueError(
                    "worker_crashes require parallel_workers > 1 "
                    "(there are no worker processes to crash otherwise)"
                )

    @property
    def faults_enabled(self) -> bool:
        """True when the config injects any fault at all."""
        return self.fault_plan is not None and self.fault_plan.enabled

    @property
    def fault_tolerant(self) -> bool:
        """True when the master should run its resilience machinery."""
        return self.faults_enabled or self.dispatch_deadline is not None

    @property
    def uses_scheduler(self) -> bool:
        """True when jobs go through the event kernel (not the fallback)."""
        return self.scheduling_policy is not None or self.background_tenants > 0

    @property
    def checkpointing_enabled(self) -> bool:
        """True when training writes a durable run (journal + checkpoints)."""
        return self.checkpoint_every is not None

    def describe(self) -> str:
        if self.label:
            return self.label
        weighting = "unweighted" if self.weight_bounds is None else f"weights {self.weight_bounds}"
        return f"EQC[{len(self.device_names)} devices, {weighting}]"


class EQCEnsemble:
    """A virtualized quantum backend built from a fleet of simulated QPUs."""

    def __init__(self, objective: VQAObjective, config: EQCConfig | None = None) -> None:
        self.config = config or EQCConfig()
        self.objective = objective
        self.fleet: list[QPU] = build_fleet(self.config.device_names)
        self.scheduler: CloudScheduler | None = None
        if self.config.uses_scheduler:
            workload = None
            if self.config.background_tenants > 0:
                workload = WorkloadGenerator(
                    num_tenants=self.config.background_tenants,
                    jobs_per_tenant_hour=self.config.tenant_jobs_per_hour,
                )
            self.scheduler = CloudScheduler(
                policy=self.config.scheduling_policy,
                workload=workload,
                seed=self.config.seed,
            )
        #: Fault injection: the injector exists only when the plan carries
        #: device-level faults, so the fault-free provider path is untouched.
        self.fault_injector: FaultInjector | None = None
        if (
            self.config.fault_plan is not None
            and self.config.fault_plan.has_device_faults
        ):
            self.fault_injector = FaultInjector(
                self.config.fault_plan, seed=self.config.seed
            )
        self.provider = CloudProvider(
            self.fleet,
            queue_models=self.config.queue_models,
            seed=self.config.seed,
            shots=self.config.shots,
            scheduler=self.scheduler,
            fault_injector=self.fault_injector,
            retry_policy=self.config.retry_policy,
        )
        #: One structure-keyed transpile cache shared by every client: devices
        #: with a common topology reuse each other's transpilations.
        self.transpile_cache = TranspileCache()
        self.clients = [
            EQCClientNode(
                objective=objective,
                qpu=qpu,
                provider=self.provider,
                shots=self.config.shots,
                transpile_cache=self.transpile_cache,
            )
            for qpu in self.fleet
        ]

    # ------------------------------------------------------------------
    @classmethod
    def for_estimator(
        cls, estimator: EnergyEstimator, config: EQCConfig | None = None
    ) -> "EQCEnsemble":
        """Build an ensemble around a VQE/QAOA energy estimator."""
        return cls(EnergyObjective(estimator), config)

    @property
    def device_names(self) -> tuple[str, ...]:
        return tuple(qpu.name for qpu in self.fleet)

    # ------------------------------------------------------------------
    def train(
        self,
        initial_parameters: Sequence[float],
        num_epochs: int,
        task_queue: CyclicTaskQueue | None = None,
        record_every: int = 1,
        _checkpointer: "object | None" = None,
    ) -> TrainingHistory:
        """Run asynchronous ensemble training and return its history.

        With ``config.parallel_workers > 1`` the per-device client steps run
        in a multiprocessing pool (lazily constructed here, torn down before
        returning); histories are bit-exact with the sequential path either
        way.

        With ``config.checkpoint_every`` set the run registers into the
        configured run store, journals every update, and checkpoints at the
        configured epoch cadence — so a killed process can be finished
        bit-exactly with :func:`repro.persist.resume`.  ``_checkpointer`` is
        the resume path's entry point (a restore-loaded
        :class:`~repro.persist.TrainingCheckpointer`); user code never
        passes it.
        """
        if record_every < 1:
            raise ValueError("record_every must be >= 1")
        queue = task_queue or vqe_task_cycle(self.objective.num_parameters)
        checkpointer = _checkpointer
        run = None
        if checkpointer is None and self.config.checkpointing_enabled:
            # Imported lazily: persist builds on core's master/history, so a
            # module-level import would be circular (same pattern as the
            # parallel executor below).
            from ..persist.store import RunStore

            run = RunStore(self.config.run_store).create_run(
                config=self.config,
                initial_parameters=[float(v) for v in initial_parameters],
                num_epochs=num_epochs,
                record_every=record_every,
            )
        executor = None
        if self.config.parallel_workers > 1:
            # Imported lazily: execution builds on core's client node, so a
            # module-level import would be circular.
            from ..execution.parallel import ParallelEnsembleExecutor

            executor = ParallelEnsembleExecutor(
                objective=self.objective,
                qpus=self.fleet,
                num_workers=self.config.parallel_workers,
                queue_models=self.config.queue_models,
                seed=self.config.seed,
                shots=self.config.shots,
                client_names=[client.name for client in self.clients],
                start_method=self.config.parallel_start_method,
                fault_plan=self.config.fault_plan,
            )
        try:
            health = DeviceHealthTracker() if self.config.fault_tolerant else None
            if run is not None:
                from ..persist.checkpoint import TrainingCheckpointer

                checkpointer = TrainingCheckpointer(
                    run,
                    checkpoint_every=self.config.checkpoint_every,
                    retention=self.config.checkpoint_retention,
                    provider=self.provider,
                    injector=self.fault_injector,
                )
            master = EQCMasterNode(
                objective=self.objective,
                clients=self.clients,
                task_queue=queue,
                rule=AsgdRule(learning_rate=self.config.learning_rate),
                weighting=WeightingConfig(
                    bounds=self.config.weight_bounds,
                    refresh_on_every_update=self.config.refresh_weights,
                ),
                initial_parameters=np.asarray(initial_parameters, dtype=float),
                label=self.config.describe(),
                executor=executor,
                health=health,
                dispatch_deadline=self.config.dispatch_deadline,
                min_live_devices=self.config.min_live_devices,
            )
            history = master.train(
                num_epochs=num_epochs,
                record_every=record_every,
                checkpointer=checkpointer,
            )
            if self.config.fault_tolerant:
                if self.config.fault_plan is not None:
                    history.metadata["fault_plan"] = self.config.fault_plan.describe()
                history.metadata["provider_faults"] = dict(
                    self.provider.fault_counters
                )
                if executor is not None and executor.crash_events:
                    history.metadata["worker_crashes"] = list(executor.crash_events)
                if health is not None and _telemetry.enabled:
                    health.publish()
            if executor is not None:
                # This ensemble's own provider never ran a job; the workers'
                # merged per-device records are numerically identical to the
                # sequential single-provider report.
                history.metadata["utilization"] = executor.utilization_report()
                history.metadata["parallel_workers"] = executor.num_workers
                # Worker processes collected their own metrics and spans;
                # fold them into the master's telemetry before teardown.
                executor.collect_telemetry()
            else:
                history.metadata["utilization"] = self.provider.utilization_report()
        finally:
            if executor is not None:
                executor.shutdown()
            if checkpointer is not None:
                # Crash-path safety: the journal is flushed/closed even when
                # training raises (the run stays resumable).
                checkpointer.close()
        if self.scheduler is not None:
            history.metadata["scheduler"] = self.scheduler.metrics()
        if _telemetry.enabled:
            self.transpile_cache.publish()
            if self.scheduler is not None:
                self.scheduler.publish()
            registry = _telemetry.registry
            for name, stats in history.metadata["utilization"].items():
                registry.gauge("qpu.utilization", device=name).set(
                    stats["utilization"]
                )
        if checkpointer is not None:
            # The final history (ensemble metadata included) and the closing
            # manifest flip land only after a fully successful run.
            checkpointer.finalize(history)
        return history
