"""EQC: the ensembled quantum computing framework (the paper's contribution)."""

from .client import EQCClientNode, GradientOutcome
from .ensemble import EQCConfig, EQCEnsemble
from .history import EpochRecord, TrainingHistory
from .master import EQCMasterNode, MasterTelemetry
from .objective import EnergyObjective, GradientJobSpec, QnnObjective, VQAObjective
from .weighting import (
    BOUNDS_MODERATE,
    BOUNDS_TIGHT,
    BOUNDS_WIDE,
    UNWEIGHTED,
    WeightBounds,
    WeightingConfig,
    estimate_p_correct,
    normalize_weights,
)

__all__ = [
    "EQCClientNode",
    "GradientOutcome",
    "EQCMasterNode",
    "MasterTelemetry",
    "EQCEnsemble",
    "EQCConfig",
    "EpochRecord",
    "TrainingHistory",
    "VQAObjective",
    "EnergyObjective",
    "QnnObjective",
    "GradientJobSpec",
    "estimate_p_correct",
    "normalize_weights",
    "WeightBounds",
    "WeightingConfig",
    "UNWEIGHTED",
    "BOUNDS_TIGHT",
    "BOUNDS_MODERATE",
    "BOUNDS_WIDE",
]
