"""The Quantum Approximate Optimization Algorithm (MaxCut) problem definition.

:func:`ring_maxcut_qaoa_problem` builds the paper's Fig. 10/11 experiment: a
single-layer QAOA ansatz (2 trainable parameters) over the 4-node unweighted
ring, optimized against the diagonal MaxCut Hamiltonian of Eq. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx
import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.library import qaoa_maxcut_ansatz
from ..hamiltonian.expectation import EnergyEstimator
from ..hamiltonian.maxcut import RING_GRAPH_EDGES, best_cut, cut_value, maxcut_graph, maxcut_hamiltonian
from ..hamiltonian.pauli import PauliSum

__all__ = ["QAOAProblem", "ring_maxcut_qaoa_problem"]


@dataclass
class QAOAProblem:
    """A QAOA MaxCut instance: graph + Hamiltonian + ansatz + references."""

    name: str
    graph: nx.Graph
    hamiltonian: PauliSum
    ansatz: QuantumCircuit
    estimator: EnergyEstimator = field(init=False)
    ground_energy: float = field(init=False)
    optimal_cut_value: float = field(init=False)
    optimal_cut_bits: str = field(init=False)

    def __post_init__(self) -> None:
        self.estimator = EnergyEstimator(self.ansatz, self.hamiltonian)
        self.ground_energy = self.hamiltonian.ground_state_energy()
        self.optimal_cut_bits, self.optimal_cut_value = best_cut(self.graph)

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return self.estimator.num_parameters

    @property
    def num_qubits(self) -> int:
        return self.ansatz.num_qubits

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def energy(self, values: Sequence[float]) -> float:
        """Exact expectation of the MaxCut Hamiltonian at a parameter vector."""
        return self.estimator.exact_energy(values)

    def normalized_cost(self, energy: float) -> float:
        """Per-edge MaxCut cost in ``[-1, 0]`` (the paper's Fig. 11/12 axis).

        ``-1`` would mean every edge is cut in expectation; the paper's best
        runs reach roughly ``-0.74`` for the 4-node ring with ``p = 1``.
        """
        if self.num_edges == 0:
            return 0.0
        return float(energy) / self.num_edges

    def cut_of_bitstring(self, bitstring: str) -> float:
        """Classical cut weight of one measured bitstring."""
        return cut_value(self.graph, bitstring)

    def approximation_ratio(self, energy: float) -> float:
        """``(expected cut) / (optimal cut)`` derived from the Hamiltonian value."""
        if self.optimal_cut_value == 0:
            return 0.0
        expected_cut = -float(energy)
        return expected_cut / self.optimal_cut_value

    def random_initial_parameters(self, seed: int = 11, scale: float = 0.75) -> np.ndarray:
        """A reproducible random starting point.

        Unlike VQE, the QAOA landscape has a saddle at the origin (zero cost
        and mixer angles give vanishing gradients), so the default scale
        places the two angles well away from it.
        """
        rng = np.random.default_rng(seed)
        return rng.uniform(0.1 * scale, scale, size=self.num_parameters)


def ring_maxcut_qaoa_problem(num_layers: int = 1) -> QAOAProblem:
    """The paper's 4-node unweighted ring MaxCut QAOA (Fig. 10/11)."""
    graph = maxcut_graph(4, RING_GRAPH_EDGES)
    hamiltonian = maxcut_hamiltonian(graph)
    ansatz = qaoa_maxcut_ansatz(4, RING_GRAPH_EDGES, num_layers=num_layers, measure=False)
    return QAOAProblem(
        name="ring_maxcut_4node",
        graph=graph,
        hamiltonian=hamiltonian,
        ansatz=ansatz,
    )
