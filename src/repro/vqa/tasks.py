"""VQA task decomposition (paper Section III-A).

The master node decomposes one training epoch into independent gradient
tasks, each small enough to hand to one client node:

* **VQE / QAOA** — one task per trainable parameter (the paper additionally
  notes VQE can split at the Pauli-string level; our measurement-group
  machinery realizes that inside a task, where the client runs one circuit
  per commuting group).
* **QNN** — one task per (parameter, data point) pair; the master averages
  the per-datapoint gradients for a parameter.

Tasks are handed out cyclically (Algorithm 1): parameter 0, 1, ..., m-1, then
back to 0, which is also what the convergence proof assumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["GradientTask", "CyclicTaskQueue", "vqe_task_cycle", "qnn_task_cycle"]


@dataclass(frozen=True)
class GradientTask:
    """One unit of work for a client node.

    Attributes:
        task_id: globally unique, monotonically increasing id.
        parameter_index: the parameter this task differentiates.
        data_index: for QNN tasks, the data point; ``None`` otherwise.
    """

    task_id: int
    parameter_index: int
    data_index: int | None = None

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError("task_id must be non-negative")
        if self.parameter_index < 0:
            raise ValueError("parameter_index must be non-negative")
        if self.data_index is not None and self.data_index < 0:
            raise ValueError("data_index must be non-negative")


class CyclicTaskQueue:
    """Endless cyclic task generator with epoch tracking.

    One *epoch* is one full pass over the cycle (all parameters, or all
    parameter x data-point pairs for QNN).  The queue tracks how many tasks
    have been issued and therefore how many complete epochs have been started.
    """

    def __init__(self, cycle: Sequence[tuple[int, int | None]]) -> None:
        cycle = list(cycle)
        if not cycle:
            raise ValueError("task cycle must not be empty")
        self._cycle = cycle
        self._issued = 0

    # ------------------------------------------------------------------
    @property
    def cycle_length(self) -> int:
        return len(self._cycle)

    @property
    def tasks_issued(self) -> int:
        return self._issued

    @property
    def epochs_started(self) -> int:
        """Number of full cycles that have begun."""
        if self._issued == 0:
            return 0
        return (self._issued - 1) // self.cycle_length + 1

    def next_task(self) -> GradientTask:
        """Issue the next task in the cycle."""
        position = self._issued % self.cycle_length
        parameter_index, data_index = self._cycle[position]
        task = GradientTask(
            task_id=self._issued,
            parameter_index=parameter_index,
            data_index=data_index,
        )
        self._issued += 1
        return task

    def epoch_of_task(self, task: GradientTask) -> int:
        """The (0-based) epoch a task belongs to."""
        return task.task_id // self.cycle_length


def vqe_task_cycle(num_parameters: int) -> CyclicTaskQueue:
    """Parameter-level decomposition for VQE and QAOA."""
    if num_parameters < 1:
        raise ValueError("num_parameters must be >= 1")
    return CyclicTaskQueue([(index, None) for index in range(num_parameters)])


def qnn_task_cycle(num_parameters: int, num_datapoints: int) -> CyclicTaskQueue:
    """(parameter, data point) decomposition for QNN training."""
    if num_parameters < 1 or num_datapoints < 1:
        raise ValueError("need at least one parameter and one data point")
    cycle = [
        (parameter, data)
        for parameter in range(num_parameters)
        for data in range(num_datapoints)
    ]
    return CyclicTaskQueue(cycle)
