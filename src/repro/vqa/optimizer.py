"""Gradient-descent update rules: synchronous SGD and weighted ASGD.

The master node applies the asynchronous update rule of paper Eq. 12 with the
``PCorrect``-derived weight of Eq. 4:

    ``theta_i^{t+1} = theta_i^t - w * alpha * g_tau(theta_i^tau)``

where the gradient may have been computed from a stale parameter snapshot
(``tau <= t``), which is the defining property of ASGD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["AsgdRule", "ParameterVectorState", "clip_gradient", "initial_parameters"]


def clip_gradient(gradient: float, bound: float) -> float:
    """Clamp a scalar gradient to ``[-bound, bound]`` (0 disables clipping).

    The convergence proof in the paper's appendix assumes bounded gradients;
    loss functions built from bounded observables satisfy this automatically,
    but clipping guards against pathological noisy estimates.
    """
    if bound <= 0:
        return float(gradient)
    return float(max(-bound, min(bound, gradient)))


@dataclass(frozen=True)
class AsgdRule:
    """The (weighted) asynchronous SGD update rule.

    Attributes:
        learning_rate: the step size ``alpha`` (paper uses 0.1).
        gradient_bound: optional clamp on the incoming gradient (0 = off).
    """

    learning_rate: float = 0.1
    gradient_bound: float = 0.0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.gradient_bound < 0:
            raise ValueError("gradient_bound must be non-negative")

    def step(self, value: float, gradient: float, weight: float = 1.0) -> float:
        """Apply one update to a single parameter (paper Eq. 4 / Eq. 12)."""
        if weight < 0:
            raise ValueError("weight must be non-negative")
        gradient = clip_gradient(gradient, self.gradient_bound)
        return float(value) - weight * self.learning_rate * float(gradient)


@dataclass
class ParameterVectorState:
    """The master node's live parameter vector with per-parameter bookkeeping.

    Tracks how many times each parameter has been updated and the update
    version number used to quantify gradient staleness in the analysis.
    """

    values: np.ndarray
    update_counts: np.ndarray = field(init=False)
    version: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float).copy()
        self.update_counts = np.zeros(self.values.size, dtype=int)

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return int(self.values.size)

    def snapshot(self) -> tuple[float, ...]:
        """An immutable copy of the current parameter vector."""
        return tuple(float(v) for v in self.values)

    def apply(self, index: int, gradient: float, rule: AsgdRule, weight: float = 1.0) -> float:
        """Update one parameter in place and return its new value."""
        if not 0 <= index < self.num_parameters:
            raise IndexError(f"parameter index {index} out of range")
        self.values[index] = rule.step(self.values[index], gradient, weight)
        self.update_counts[index] += 1
        self.version += 1
        return float(self.values[index])

    def min_updates(self) -> int:
        """The smallest per-parameter update count (epoch boundary tracking)."""
        return int(self.update_counts.min()) if self.num_parameters else 0


def initial_parameters(
    num_parameters: int,
    rng: np.random.Generator,
    scale: float = 0.1,
) -> np.ndarray:
    """Small random initial parameters (shared by every trainer for fairness)."""
    if num_parameters < 1:
        raise ValueError("num_parameters must be >= 1")
    return rng.uniform(-scale, scale, size=num_parameters)
