"""The Variational Quantum Eigensolver problem definition.

A :class:`VQEProblem` bundles everything a trainer (ideal baseline,
single-device baseline, or EQC) needs: the Hamiltonian, the parameterized
ansatz, the shared :class:`~repro.hamiltonian.expectation.EnergyEstimator`,
and the exact ground energy used as the convergence reference.

:func:`heisenberg_vqe_problem` builds the paper's 4-qubit Heisenberg
experiment (Fig. 6/Fig. 9): hardware-efficient ansatz of Fig. 8 (16
parameters) against the square-lattice Hamiltonian of Eq. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.library import hardware_efficient_ansatz
from ..hamiltonian.expectation import EnergyEstimator
from ..hamiltonian.heisenberg import heisenberg_square_lattice
from ..hamiltonian.pauli import PauliSum

__all__ = ["VQEProblem", "heisenberg_vqe_problem"]


@dataclass
class VQEProblem:
    """A VQE instance: Hamiltonian + ansatz + estimator + reference energy."""

    name: str
    hamiltonian: PauliSum
    ansatz: QuantumCircuit
    estimator: EnergyEstimator = field(init=False)
    ground_energy: float = field(init=False)

    def __post_init__(self) -> None:
        self.estimator = EnergyEstimator(self.ansatz, self.hamiltonian)
        self.ground_energy = self.hamiltonian.ground_state_energy()

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return self.estimator.num_parameters

    @property
    def num_qubits(self) -> int:
        return self.ansatz.num_qubits

    def energy(self, values: Sequence[float]) -> float:
        """Exact (noise-free) energy at a parameter vector."""
        return self.estimator.exact_energy(values)

    def error_vs_ground(self, energy: float) -> float:
        """Relative deviation from the ground energy, as a fraction.

        Matches the paper's Fig. 1/Fig. 6 error metric: the deviation of the
        obtained energy from the ideal ground energy, normalized by the
        magnitude of the ground energy.
        """
        reference = abs(self.ground_energy)
        if reference == 0:
            return abs(energy - self.ground_energy)
        return abs(energy - self.ground_energy) / reference

    def random_initial_parameters(self, seed: int = 7, scale: float = 0.1) -> np.ndarray:
        """A reproducible random starting point shared across trainers."""
        rng = np.random.default_rng(seed)
        return rng.uniform(-scale, scale, size=self.num_parameters)


def heisenberg_vqe_problem(
    coupling: float = 1.0,
    field_strength: float = 1.0,
    num_layers: int = 1,
) -> VQEProblem:
    """The paper's 4-qubit Heisenberg square-lattice VQE (Fig. 6)."""
    hamiltonian = heisenberg_square_lattice(coupling, field_strength)
    ansatz = hardware_efficient_ansatz(4, num_layers=num_layers, measure=False)
    return VQEProblem(name="heisenberg_4q_square", hamiltonian=hamiltonian, ansatz=ansatz)
