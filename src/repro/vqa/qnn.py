"""Quantum neural network training task (paper Section III-A, QNN case).

The paper's third VQA family distributes gradients at the *dataset* level:
each parallel job computes the gradient of the loss for one data point with
respect to one target parameter, and the master averages the returned
gradients.  This module provides a compact binary-classification QNN — a
data-reuploading circuit whose ``<Z_0>`` readout is trained against +/-1
labels with a squared loss — plus a synthetic dataset generator so the task
decomposition and the EQC scheduler can be exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.library import qnn_encoder_ansatz
from ..hamiltonian.expectation import EnergyEstimator
from ..hamiltonian.pauli import PauliString, PauliSum

__all__ = ["QNNDataset", "QNNProblem", "make_synthetic_dataset", "two_moons_like_dataset"]


@dataclass(frozen=True)
class QNNDataset:
    """A small supervised dataset with features in radians and labels in {-1, +1}."""

    features: tuple[tuple[float, ...], ...]
    labels: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.features) != len(self.labels):
            raise ValueError("features and labels must have the same length")
        if not self.features:
            raise ValueError("dataset must not be empty")
        widths = {len(x) for x in self.features}
        if len(widths) != 1:
            raise ValueError("all feature vectors must share one dimension")
        for label in self.labels:
            if label not in (-1, 1):
                raise ValueError("labels must be -1 or +1")

    def __len__(self) -> int:
        return len(self.features)

    @property
    def feature_dimension(self) -> int:
        return len(self.features[0])


def make_synthetic_dataset(
    num_samples: int = 16,
    feature_dimension: int = 4,
    seed: int = 3,
) -> QNNDataset:
    """A linearly-separable synthetic dataset encoded as rotation angles."""
    if num_samples < 2:
        raise ValueError("need at least two samples")
    rng = np.random.default_rng(seed)
    features = []
    labels = []
    for _ in range(num_samples):
        x = rng.uniform(-np.pi / 2, np.pi / 2, size=feature_dimension)
        label = 1 if float(np.sum(x)) >= 0 else -1
        features.append(tuple(float(v) for v in x))
        labels.append(label)
    return QNNDataset(tuple(features), tuple(labels))


def two_moons_like_dataset(num_samples: int = 24, seed: int = 5) -> QNNDataset:
    """A non-linearly-separable 2-D dataset lifted to 4 encoded angles."""
    rng = np.random.default_rng(seed)
    features = []
    labels = []
    for index in range(num_samples):
        label = 1 if index % 2 == 0 else -1
        angle = rng.uniform(0, np.pi)
        radius = 1.0 + rng.normal(0, 0.1)
        x = radius * np.cos(angle) + (0.5 if label < 0 else -0.5)
        y = radius * np.sin(angle) * label
        encoded = (x, y, x * y, x - y)
        features.append(tuple(float(np.clip(v, -np.pi, np.pi)) for v in encoded))
        labels.append(label)
    return QNNDataset(tuple(features), tuple(labels))


@dataclass
class QNNProblem:
    """A QNN classification instance trained on ``<Z_0>`` readout."""

    name: str
    dataset: QNNDataset
    num_qubits: int = 4
    num_layers: int = 1
    readout: PauliSum = field(init=False)
    _estimators: dict[int, EnergyEstimator] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        label = "Z" + "I" * (self.num_qubits - 1)
        self.readout = PauliSum([PauliString(label, 1.0)])

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return self.num_qubits * self.num_layers

    def estimator_for(self, data_index: int) -> EnergyEstimator:
        """The (cached) estimator whose ansatz encodes one data point."""
        if data_index not in self._estimators:
            features = self.dataset.features[data_index]
            ansatz = qnn_encoder_ansatz(
                self.num_qubits, features, num_layers=self.num_layers
            ).without_measurements()
            self._estimators[data_index] = EnergyEstimator(ansatz, self.readout)
        return self._estimators[data_index]

    def prediction(self, values: Sequence[float], data_index: int) -> float:
        """Model output ``<Z_0>`` in [-1, 1] for one data point."""
        return self.estimator_for(data_index).exact_energy(values)

    def sample_loss(self, values: Sequence[float], data_index: int) -> float:
        """Squared error of one data point."""
        target = self.dataset.labels[data_index]
        return (self.prediction(values, data_index) - target) ** 2

    def dataset_loss(self, values: Sequence[float]) -> float:
        """Mean squared error over the dataset (the quantity being minimized)."""
        losses = [self.sample_loss(values, i) for i in range(len(self.dataset))]
        return float(np.mean(losses))

    def accuracy(self, values: Sequence[float]) -> float:
        """Fraction of samples whose sign of ``<Z_0>`` matches the label."""
        correct = 0
        for index, label in enumerate(self.dataset.labels):
            predicted = 1 if self.prediction(values, index) >= 0 else -1
            correct += int(predicted == label)
        return correct / len(self.dataset)

    def sample_gradient(
        self, values: Sequence[float], parameter_index: int, data_index: int
    ) -> float:
        """Exact chain-rule gradient of one sample's loss for one parameter.

        ``d loss / d theta = 2 (prediction - label) * d prediction / d theta``
        with the inner derivative obtained by the parameter-shift rule.
        """
        from .gradient import exact_parameter_shift_gradient

        estimator = self.estimator_for(data_index)
        prediction = estimator.exact_energy(values)
        inner = exact_parameter_shift_gradient(estimator, values, parameter_index)
        return 2.0 * (prediction - self.dataset.labels[data_index]) * inner

    def random_initial_parameters(self, seed: int = 13, scale: float = 0.1) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.uniform(-scale, scale, size=self.num_parameters)
