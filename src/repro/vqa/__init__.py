"""Variational quantum algorithms: gradients, optimizers, VQE/QAOA/QNN problems."""

from .gradient import (
    PARAMETER_SHIFT,
    ShiftedPair,
    exact_full_gradient,
    exact_parameter_shift_gradient,
    gradient_from_energies,
    parameter_shift_batch,
    sampled_parameter_shift_gradient,
    shifted_parameter_vectors,
)
from .optimizer import AsgdRule, ParameterVectorState, clip_gradient, initial_parameters
from .qaoa import QAOAProblem, ring_maxcut_qaoa_problem
from .qnn import QNNDataset, QNNProblem, make_synthetic_dataset, two_moons_like_dataset
from .tasks import CyclicTaskQueue, GradientTask, qnn_task_cycle, vqe_task_cycle
from .vqe import VQEProblem, heisenberg_vqe_problem

__all__ = [
    "PARAMETER_SHIFT",
    "ShiftedPair",
    "shifted_parameter_vectors",
    "gradient_from_energies",
    "exact_parameter_shift_gradient",
    "exact_full_gradient",
    "parameter_shift_batch",
    "sampled_parameter_shift_gradient",
    "AsgdRule",
    "ParameterVectorState",
    "clip_gradient",
    "initial_parameters",
    "VQEProblem",
    "heisenberg_vqe_problem",
    "QAOAProblem",
    "ring_maxcut_qaoa_problem",
    "QNNProblem",
    "QNNDataset",
    "make_synthetic_dataset",
    "two_moons_like_dataset",
    "GradientTask",
    "CyclicTaskQueue",
    "vqe_task_cycle",
    "qnn_task_cycle",
]
