"""Correlation statistics for the PCorrect validation (paper Fig. 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

__all__ = ["CorrelationReport", "correlate", "linear_fit"]


@dataclass(frozen=True)
class CorrelationReport:
    """Pearson correlation + linear fit between predicted and observed values."""

    pearson_r: float
    p_value: float
    r_squared: float
    slope: float
    intercept: float
    num_points: int

    def describe(self) -> str:
        return (
            f"r={self.pearson_r:.3f} (p={self.p_value:.2e}), "
            f"R^2={self.r_squared:.3f}, fit y={self.slope:.2f}x+{self.intercept:.2f} "
            f"over {self.num_points} points"
        )


def linear_fit(x: Sequence[float], y: Sequence[float]) -> tuple[float, float, float]:
    """Least-squares line ``y = slope * x + intercept`` and its R^2."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.size != y_arr.size or x_arr.size < 2:
        raise ValueError("need two equal-length samples with at least 2 points")
    slope, intercept = np.polyfit(x_arr, y_arr, 1)
    predicted = slope * x_arr + intercept
    residual = np.sum((y_arr - predicted) ** 2)
    total = np.sum((y_arr - np.mean(y_arr)) ** 2)
    r_squared = 1.0 - residual / total if total > 0 else 0.0
    return float(slope), float(intercept), float(r_squared)


def correlate(predicted: Sequence[float], observed: Sequence[float]) -> CorrelationReport:
    """Pearson correlation and linear fit between two samples.

    The paper's Fig. 4 reports a Pearson correlation of 0.784 (two-tailed
    p = 1.28e-7) and a linear-fit R^2 of 0.605 between the calculated and
    observed GHZ error rates; this function produces the analogous numbers
    for the reproduction.
    """
    x = np.asarray(predicted, dtype=float)
    y = np.asarray(observed, dtype=float)
    if x.size != y.size or x.size < 3:
        raise ValueError("need two equal-length samples with at least 3 points")
    pearson = stats.pearsonr(x, y)
    slope, intercept, r_squared = linear_fit(x, y)
    return CorrelationReport(
        pearson_r=float(pearson.statistic),
        p_value=float(pearson.pvalue),
        r_squared=r_squared,
        slope=slope,
        intercept=intercept,
        num_points=int(x.size),
    )
