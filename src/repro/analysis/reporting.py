"""Plain-text reporting helpers used by benchmarks and examples.

The benchmark harness regenerates the paper's tables and figure data as text
(no plotting dependencies are available offline); these helpers render the
rows/series consistently.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(empty table)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered
    ]
    return "\n".join([header, separator, *body])


def format_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    max_points: int = 20,
) -> str:
    """Render an (x, y) series compactly, down-sampling long traces."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    n = len(xs)
    if n == 0:
        return f"{name}: (empty)"
    stride = max(1, n // max_points)
    points = [
        f"({xs[i]:.3g}, {ys[i]:.3g})" for i in range(0, n, stride)
    ]
    if (n - 1) % stride != 0:
        points.append(f"({xs[-1]:.3g}, {ys[-1]:.3g})")
    return f"{name}: " + " ".join(points)


def format_kv(values: Mapping[str, object], float_format: str = "{:.4g}") -> str:
    """Render a flat mapping as ``key=value`` pairs."""
    parts = []
    for key, value in values.items():
        if isinstance(value, float):
            parts.append(f"{key}={float_format.format(value)}")
        else:
            parts.append(f"{key}={value}")
    return ", ".join(parts)
