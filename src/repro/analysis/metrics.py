"""Evaluation metrics: error rates, convergence, throughput, speedups."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.history import TrainingHistory

__all__ = [
    "relative_error",
    "speedup",
    "SpeedupSummary",
    "speedup_summary",
    "throughput_table",
]


def relative_error(value: float, reference: float) -> float:
    """``|value - reference| / |reference|`` (plain absolute error when the
    reference is zero)."""
    if reference == 0:
        return abs(value - reference)
    return abs(value - reference) / abs(reference)


def speedup(fast_rate: float, slow_rate: float) -> float:
    """Throughput ratio ``fast / slow`` (inf when the slow rate is zero)."""
    if slow_rate <= 0:
        return float("inf")
    return fast_rate / slow_rate


@dataclass(frozen=True)
class SpeedupSummary:
    """EQC-vs-single-device speedup statistics (paper abstract / Section V)."""

    eqc_epochs_per_hour: float
    single_device_rates: Mapping[str, float]
    average_speedup: float
    min_speedup: float
    max_speedup: float

    def describe(self) -> str:
        return (
            f"EQC {self.eqc_epochs_per_hour:.2f} epochs/h; speedup "
            f"avg {self.average_speedup:.1f}x, min {self.min_speedup:.1f}x, "
            f"max {self.max_speedup:.1f}x over {len(self.single_device_rates)} devices"
        )


def speedup_summary(
    eqc_history: TrainingHistory,
    single_histories: Sequence[TrainingHistory],
) -> SpeedupSummary:
    """Aggregate the paper's headline speedup statistics from run histories."""
    if not single_histories:
        raise ValueError("need at least one single-device history")
    eqc_rate = eqc_history.epochs_per_hour()
    rates = {h.label: h.epochs_per_hour() for h in single_histories}
    ratios = [speedup(eqc_rate, rate) for rate in rates.values() if np.isfinite(rate)]
    finite = [r for r in ratios if np.isfinite(r)]
    if not finite:
        raise ValueError("no finite single-device rates to compare against")
    return SpeedupSummary(
        eqc_epochs_per_hour=eqc_rate,
        single_device_rates=rates,
        average_speedup=float(np.mean(finite)),
        min_speedup=float(np.min(finite)),
        max_speedup=float(np.max(finite)),
    )


def throughput_table(histories: Sequence[TrainingHistory]) -> list[dict[str, float | str]]:
    """Per-run throughput rows (label, epochs, hours, epochs/hour)."""
    rows: list[dict[str, float | str]] = []
    for history in histories:
        rows.append(
            {
                "label": history.label,
                "epochs": float(len(history)),
                "hours": history.total_hours(),
                "epochs_per_hour": history.epochs_per_hour(),
                "terminated_early": str(history.terminated_early),
            }
        )
    return rows
