"""Analysis utilities: metrics, correlation statistics, text reporting."""

from .correlation import CorrelationReport, correlate, linear_fit
from .metrics import (
    SpeedupSummary,
    relative_error,
    speedup,
    speedup_summary,
    throughput_table,
)
from .reporting import format_kv, format_series, format_table

__all__ = [
    "relative_error",
    "speedup",
    "SpeedupSummary",
    "speedup_summary",
    "throughput_table",
    "CorrelationReport",
    "correlate",
    "linear_fit",
    "format_table",
    "format_series",
    "format_kv",
]
