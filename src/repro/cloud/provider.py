"""The simulated cloud provider: job submission, queues, utilization.

The :class:`CloudProvider` is the piece of the substrate that stands in for
the IBMQ service.  Each backend device keeps a serial work queue, and the
provider supports two queueing regimes:

* **statistical** (default) — a job submitted at time *t* waits for
  (a) whatever the device is still executing and (b) a stochastic congestion
  delay from the device's :class:`~repro.cloud.queueing.QueueModel`
  (the :class:`~repro.cloud.queueing.StatisticalQueuePolicy` fallback; other
  users are a distribution, and seeded histories are bit-exact with the
  pre-scheduler code);
* **scheduled** — when constructed with a
  :class:`~repro.sched.scheduler.CloudScheduler`, jobs are submitted into
  the shared discrete-event kernel where they compete with background tenant
  traffic for capacity-1 devices under a pluggable scheduling policy, and
  queue delays *emerge* from contention and calibration downtime.

Either way the provider records per-device busy time so the utilization
imbalance the paper motivates EQC with can be quantified (see
:meth:`CloudProvider.utilization_report`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..backends.base import ExecutionBackend
from ..backends.noisy import NoisyBackend
from ..circuit.circuit import QuantumCircuit
from ..devices.qpu import QPU, CircuitFootprint, job_slot_circuit_seconds
from ..faults.errors import (
    DeviceOutageError,
    JobDeadlineExceeded,
    JobRetriesExhausted,
)
from ..faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from ..simulator.result import ExecutionResult
from ..telemetry import TELEMETRY as _telemetry
from .job import CloudJob, JobStatus
from .queueing import QueueModel, StatisticalQueuePolicy, queue_model_for

if TYPE_CHECKING:  # pragma: no cover - cloud never imports sched at runtime
    from ..faults.injector import FaultInjector
    from ..sched.scheduler import CloudScheduler

__all__ = ["DeviceEndpoint", "CloudProvider", "UtilizationRecord"]

#: Builds the execution backend serving one device endpoint.
BackendFactory = Callable[[QPU], ExecutionBackend]


@dataclass
class UtilizationRecord:
    """Aggregate usage statistics for one device."""

    device_name: str
    jobs_completed: int = 0
    busy_seconds: float = 0.0
    queued_seconds: float = 0.0
    last_finish_time: float = 0.0

    def utilization(self, horizon_seconds: float) -> float:
        """Busy fraction of a time horizon (0 when the horizon is empty)."""
        if horizon_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / horizon_seconds)


class DeviceEndpoint:
    """One device's serial queue inside the provider.

    The endpoint pairs the queue/utilization bookkeeping with the
    :class:`ExecutionBackend` that actually runs batches on the device —
    swapping the backend swaps the physics without touching the scheduling.
    """

    def __init__(
        self,
        qpu: QPU,
        queue_model: QueueModel,
        seed: int,
        backend: ExecutionBackend | None = None,
    ) -> None:
        self.qpu = qpu
        self.queue_model = queue_model
        self.backend: ExecutionBackend = backend if backend is not None else NoisyBackend(qpu)
        self.rng = np.random.default_rng((seed, qpu.spec.seed, 0xB0B))
        #: Simulation time at which the device becomes free.
        self.free_at = 0.0
        self.record = UtilizationRecord(device_name=qpu.name)


class CloudProvider:
    """A multi-device quantum cloud with per-device serial queues."""

    def __init__(
        self,
        qpus: Iterable[QPU],
        queue_models: Mapping[str, QueueModel] | None = None,
        seed: int = 0,
        shots: int = 8192,
        backend_factory: BackendFactory | None = None,
        scheduler: "CloudScheduler | None" = None,
        queue_policy: StatisticalQueuePolicy | None = None,
        fault_injector: "FaultInjector | None" = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        qpus = list(qpus)
        if not qpus:
            raise ValueError("the provider needs at least one device")
        names = [q.name for q in qpus]
        if len(set(names)) != len(names):
            raise ValueError("duplicate device names in the fleet")
        self._endpoints: dict[str, DeviceEndpoint] = {}
        for qpu in qpus:
            model = (
                queue_models[qpu.name]
                if queue_models is not None and qpu.name in queue_models
                else queue_model_for(qpu.name)
            )
            backend = backend_factory(qpu) if backend_factory is not None else None
            self._endpoints[qpu.name] = DeviceEndpoint(qpu, model, seed, backend=backend)
        self.default_shots = int(shots)
        #: Next job id (a plain int rather than itertools.count so checkpoint
        #: snapshots can capture and restore the counter).
        self._next_job_id = 0
        self.scheduler = scheduler
        self._queue_policy = (
            queue_policy if queue_policy is not None else StatisticalQueuePolicy()
        )
        #: Fault injection: None (the default) keeps the fault-free hot path
        #: untouched beyond one predicated branch per submit.
        self._faults = (
            fault_injector
            if fault_injector is not None and fault_injector.enabled
            else None
        )
        self._retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        if self._faults is not None and scheduler is not None:
            raise ValueError(
                "fault injection is not supported on the scheduler path: "
                "inject outages through CloudScheduler.inject_outage instead"
            )
        #: Devices confirmed permanently down (fail-fast on later submits).
        self.dead_devices: set[str] = set()
        #: Plain-int fault accounting, maintained whenever faults are active
        #: (independent of the telemetry switch, so chaos determinism can be
        #: asserted without enabling collection).
        self.fault_counters: dict[str, int] = {
            "transient_failures": 0,
            "retries": 0,
            "outage_deferrals": 0,
            "job_failures": 0,
            "result_delays": 0,
            "calibration_blackouts": 0,
        }
        if scheduler is not None:
            for endpoint in self._endpoints.values():
                scheduler.register_device(endpoint.qpu, endpoint.queue_model)

    # ------------------------------------------------------------------
    @property
    def device_names(self) -> tuple[str, ...]:
        return tuple(self._endpoints.keys())

    def qpu(self, device_name: str) -> QPU:
        """The device object behind one endpoint."""
        return self._endpoint(device_name).qpu

    def backend(self, device_name: str) -> ExecutionBackend:
        """The execution backend serving one endpoint."""
        return self._endpoint(device_name).backend

    def _endpoint(self, device_name: str) -> DeviceEndpoint:
        if device_name not in self._endpoints:
            raise KeyError(f"unknown device {device_name!r}")
        return self._endpoints[device_name]

    def _new_job_id(self) -> int:
        job_id = self._next_job_id
        self._next_job_id += 1
        return job_id

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Everything that evolves during training, as JSON-able data.

        Per endpoint: the RNG bit-generator state (queue waits + measurement
        shots draw from it), the device's own fallback stream, the virtual
        clock, and the utilization record; provider-wide: the job-id
        counter, dead devices, and fault counters.  The scheduler path keeps
        its state inside the event kernel and is not checkpointable (config
        validation rejects it before a snapshot is ever taken).
        """
        return {
            "next_job_id": self._next_job_id,
            "dead_devices": sorted(self.dead_devices),
            "fault_counters": dict(self.fault_counters),
            "endpoints": {
                name: {
                    "rng": endpoint.rng.bit_generator.state,
                    "qpu_rng": endpoint.qpu._rng.bit_generator.state,
                    "free_at": endpoint.free_at,
                    "record": {
                        "jobs_completed": endpoint.record.jobs_completed,
                        "busy_seconds": endpoint.record.busy_seconds,
                        "queued_seconds": endpoint.record.queued_seconds,
                        "last_finish_time": endpoint.record.last_finish_time,
                    },
                }
                for name, endpoint in self._endpoints.items()
            },
        }

    def restore_state(self, data: Mapping) -> None:
        """Restore a captured provider state into this (fresh) provider."""
        self._next_job_id = int(data["next_job_id"])
        self.dead_devices = set(data["dead_devices"])
        self.fault_counters = {k: int(v) for k, v in data["fault_counters"].items()}
        for name, captured in data["endpoints"].items():
            endpoint = self._endpoint(name)
            endpoint.rng.bit_generator.state = dict(captured["rng"])
            endpoint.qpu._rng.bit_generator.state = dict(captured["qpu_rng"])
            endpoint.free_at = float(captured["free_at"])
            record = captured["record"]
            endpoint.record.jobs_completed = int(record["jobs_completed"])
            endpoint.record.busy_seconds = float(record["busy_seconds"])
            endpoint.record.queued_seconds = float(record["queued_seconds"])
            endpoint.record.last_finish_time = float(record["last_finish_time"])

    # ------------------------------------------------------------------
    def submit(
        self,
        device_name: str,
        circuits: Sequence[QuantumCircuit],
        footprint: CircuitFootprint,
        now: float,
        shots: int | None = None,
        priority: int = 0,
    ) -> CloudJob:
        """Submit a batch of bound circuits and simulate it to completion.

        The returned job is already in the ``DONE`` state with its results
        and timing populated; callers (EQC client nodes, baselines) treat
        ``job.finish_time`` as the moment the results become visible, which is
        how asynchrony is realized on the virtual clock.

        With a scheduler attached the job is routed through the shared event
        kernel (where it competes with tenant traffic and ``priority`` can
        matter to the policy); otherwise the statistical fallback prices the
        queue wait in closed form.
        """
        if not circuits:
            raise ValueError("a job needs at least one circuit")
        endpoint = self._endpoint(device_name)
        shots = int(shots) if shots is not None else self.default_shots

        job = CloudJob(
            job_id=self._new_job_id(),
            device_name=device_name,
            num_circuits=len(circuits),
            shots=shots,
            submit_time=float(now),
        )

        if self.scheduler is not None:
            return self._submit_scheduled(
                endpoint, job, circuits, footprint, now, shots, priority
            )

        if self._faults is not None:
            return self._submit_with_faults(
                endpoint, job, circuits, footprint, now, shots
            )

        start_time = self._queue_policy.start_time(endpoint, now)
        job.start_time = start_time
        job.status = JobStatus.RUNNING

        elapsed = self._execute_batch(endpoint, job, circuits, footprint, start_time, shots)
        for result in job.results:
            result.queue_seconds = job.queue_seconds

        job.finish_time = start_time + elapsed
        job.status = JobStatus.DONE

        endpoint.free_at = job.finish_time
        endpoint.record.jobs_completed += 1
        endpoint.record.busy_seconds += elapsed
        endpoint.record.queued_seconds += job.queue_seconds
        endpoint.record.last_finish_time = job.finish_time
        if _telemetry.enabled:
            # The statistical path owns its device timeline; on the scheduler
            # path the service queue emits the per-job sim spans instead.
            self._record_job(job, sim_span=True)
        return job

    def _submit_with_faults(
        self,
        endpoint: DeviceEndpoint,
        job: CloudJob,
        circuits: Sequence[QuantumCircuit],
        footprint: CircuitFootprint,
        now: float,
        shots: int,
    ) -> CloudJob:
        """Fault-injected statistical path: retries, outages, deadlines.

        The job loops through up to ``retry_policy.max_attempts`` service
        attempts.  Each attempt pays the normal stochastic queue wait, may be
        deferred past a transient outage window, and may bomb with the plan's
        transient-failure probability — in which case the provider backs off
        (exponential, deterministically jittered) and tries again.  Failures
        cost *virtual* time: every exception raised here carries the
        simulation time at which the caller learns about it.

        The endpoint's physics RNG is only touched by the attempt that
        actually executes, so a chaos run's successful measurements come from
        the same stream positions as a fault-free run with the same seed
        (fault decisions draw from injector streams exclusively).
        """
        faults = self._faults
        retry = self._retry_policy
        device = job.device_name
        counters = self.fault_counters

        if device in self.dead_devices:
            job.status = JobStatus.FAILED
            job.error = "device permanently down"
            counters["job_failures"] += 1
            raise DeviceOutageError(
                f"device {device!r} is permanently down",
                device_name=device,
                detect_time=float(now),
                permanent=True,
            )

        deadline = (
            job.submit_time + retry.deadline_seconds
            if retry.deadline_seconds is not None
            else None
        )
        attempt_now = float(now)
        first_failure: float | None = None
        for attempt in range(1, retry.max_attempts + 1):
            job.attempts = attempt

            outage = faults.outage_at(device, attempt_now)
            if outage is not None and outage.permanent:
                self.dead_devices.add(device)
                job.status = JobStatus.FAILED
                job.error = "permanent outage"
                counters["job_failures"] += 1
                raise DeviceOutageError(
                    f"device {device!r} suffered a permanent outage",
                    device_name=device,
                    detect_time=attempt_now,
                    permanent=True,
                )

            start_time = self._queue_policy.start_time(endpoint, attempt_now)
            outage = faults.outage_at(device, start_time)
            if outage is not None:
                if outage.permanent:
                    self.dead_devices.add(device)
                    job.status = JobStatus.FAILED
                    job.error = "permanent outage"
                    counters["job_failures"] += 1
                    raise DeviceOutageError(
                        f"device {device!r} suffered a permanent outage",
                        device_name=device,
                        detect_time=start_time,
                        permanent=True,
                    )
                # Transient window: the job simply waits it out at the head
                # of the queue.
                counters["outage_deferrals"] += 1
                start_time = max(start_time, outage.end)

            if faults.transient_failure(device):
                if first_failure is None:
                    first_failure = start_time
                counters["transient_failures"] += 1
                if attempt >= retry.max_attempts:
                    job.status = JobStatus.FAILED
                    job.error = f"transient failures exhausted {attempt} attempts"
                    counters["job_failures"] += 1
                    raise JobRetriesExhausted(
                        f"job {job.job_id} on {device!r} failed "
                        f"{attempt} attempts",
                        device_name=device,
                        detect_time=start_time,
                        attempts=attempt,
                    )
                backoff = retry.backoff_seconds(attempt, faults.retry_stream(device))
                counters["retries"] += 1
                if _telemetry.enabled:
                    _telemetry.registry.histogram(
                        "faults.backoff_seconds",
                        bounds=(15, 30, 60, 120, 300, 600, 1200),
                    ).observe(backoff)
                attempt_now = start_time + backoff
                if deadline is not None and attempt_now > deadline:
                    job.status = JobStatus.FAILED
                    job.error = "deadline exceeded during backoff"
                    counters["job_failures"] += 1
                    raise JobDeadlineExceeded(
                        f"job {job.job_id} on {device!r} blew its "
                        f"{retry.deadline_seconds:.0f}s deadline while backing off",
                        device_name=device,
                        detect_time=deadline,
                    )
                continue

            # Successful attempt: run the physics.
            job.start_time = start_time
            job.status = JobStatus.RUNNING
            elapsed = self._execute_batch(
                endpoint, job, circuits, footprint, start_time, shots
            )
            delay = faults.result_delay(device)
            if delay > 0.0:
                counters["result_delays"] += 1
            finish_time = start_time + elapsed + delay

            # Device bookkeeping is real regardless of result visibility:
            # the hardware executed the batch.
            endpoint.free_at = start_time + elapsed
            endpoint.record.jobs_completed += 1
            endpoint.record.busy_seconds += elapsed
            endpoint.record.queued_seconds += job.queue_seconds
            endpoint.record.last_finish_time = finish_time

            if deadline is not None and finish_time > deadline:
                job.status = JobStatus.FAILED
                job.error = "deadline exceeded awaiting results"
                counters["job_failures"] += 1
                raise JobDeadlineExceeded(
                    f"job {job.job_id} on {device!r} missed its results "
                    f"deadline (finish {finish_time:.0f}s > {deadline:.0f}s)",
                    device_name=device,
                    detect_time=deadline,
                )

            for result in job.results:
                result.queue_seconds = job.queue_seconds
            job.finish_time = finish_time
            job.status = JobStatus.DONE
            if _telemetry.enabled:
                self._record_job(job, sim_span=True)
                if first_failure is not None:
                    mttr = start_time - first_failure
                    _telemetry.registry.histogram(
                        "faults.mttr_seconds",
                        bounds=(30, 60, 120, 300, 600, 1800, 3600),
                    ).observe(mttr)
                    _telemetry.tracer.add_sim_span(
                        "fault recovery",
                        "faults",
                        device,
                        first_failure,
                        mttr,
                        args={"job_id": job.job_id, "attempts": attempt},
                    )
            return job

        raise AssertionError("unreachable: retry loop exits via return/raise")

    def properties_view_time(self, device_name: str, now: float) -> float:
        """The calibration timestamp the provider *publishes* at ``now``.

        Normally the current time; during an injected calibration blackout
        the published properties freeze at the window start, so client-side
        ``PCorrect`` estimates go stale exactly as they would against a real
        provider whose properties endpoint lags.
        """
        if self._faults is not None:
            window = self._faults.calibration_blackout_at(device_name, now)
            if window is not None:
                self.fault_counters["calibration_blackouts"] += 1
                return min(float(now), float(window.start))
        return float(now)

    def _execute_batch(
        self,
        endpoint: DeviceEndpoint,
        job: CloudJob,
        circuits: Sequence[QuantumCircuit],
        footprint: CircuitFootprint,
        start_time: float,
        shots: int,
    ) -> float:
        """Run one multi-circuit job on an endpoint; returns elapsed seconds.

        The whole job is one backend batch; the backend owns the in-batch
        device clock and the physics, the provider owns queueing and
        per-batch utilization accounting.  On a noisy endpoint the batch
        flows through :meth:`QPU.execute_batch` — the vectorized mixing
        pipeline: per-circuit clock offsets and noise specs are computed up
        front, the whole job simulates as one ``(batch, 2**n)`` matrix, and
        shots are drawn from the endpoint's RNG stream in batch order, so
        seeded histories are bit-exact with sequential execution.  Both
        queueing regimes (the statistical fallback and the scheduler's
        service-start event) share this path, so the physics can never
        diverge between them.
        """
        results = endpoint.backend.run(
            list(circuits),
            shots=shots,
            footprint=footprint,
            now=start_time,
            rng=endpoint.rng,
        )
        elapsed = 0.0
        for result in results:
            if result.duration_seconds == 0.0:
                # Ideal backends carry no device clock; charge the device's
                # own job timing so swapping the physics never collapses the
                # schedule (busy time, free_at, epochs/hour stay meaningful).
                result.duration_seconds = endpoint.qpu.job_duration_seconds(
                    start_time + elapsed
                )
            job.results.append(result)
            elapsed += job_slot_circuit_seconds(result.duration_seconds)
        return elapsed

    def _submit_scheduled(
        self,
        endpoint: DeviceEndpoint,
        job: CloudJob,
        circuits: Sequence[QuantumCircuit],
        footprint: CircuitFootprint,
        now: float,
        shots: int,
        priority: int,
    ) -> CloudJob:
        """Kernel path: the job queues behind live tenant traffic.

        The backend's physics run inside the service-start event — at the
        start time the scheduler *decides*, after contention and calibration
        downtime — so noise, drift and the device RNG stream see the true
        execution time, exactly as on the statistical path.
        """

        def service(start_time: float) -> float:
            # A preempted service (outage mid-run) re-enters here with a
            # fresh start time; drop any partial results from the cut run.
            job.results.clear()
            return self._execute_batch(
                endpoint, job, circuits, footprint, start_time, shots
            )

        job.status = JobStatus.RUNNING
        handle = self.scheduler.submit(
            device_name=endpoint.qpu.name,
            arrival=float(now),
            tenant="eqc",
            num_circuits=len(circuits),
            priority=priority,
            service=service,
        )
        self.scheduler.run_until_complete(handle)

        job.start_time = float(handle.start_time)
        job.finish_time = float(handle.finish_time)
        job.status = JobStatus.DONE
        for result in job.results:
            result.queue_seconds = job.queue_seconds

        queue = self.scheduler.queues[endpoint.qpu.name]
        endpoint.free_at = max(endpoint.free_at, queue.free_at)
        endpoint.record.jobs_completed += 1
        endpoint.record.busy_seconds += handle.service_seconds
        endpoint.record.queued_seconds += job.queue_seconds
        endpoint.record.last_finish_time = max(
            endpoint.record.last_finish_time, job.finish_time
        )
        if _telemetry.enabled:
            self._record_job(job, sim_span=False)
        return job

    def _record_job(self, job: CloudJob, sim_span: bool) -> None:
        """Telemetry for one completed job (enabled-path only)."""
        registry = _telemetry.registry
        registry.counter("qpu.jobs", device=job.device_name).inc()
        registry.counter("qpu.circuits", device=job.device_name).inc(job.num_circuits)
        registry.counter("qpu.shots", device=job.device_name).inc(
            job.shots * job.num_circuits
        )
        registry.histogram(
            "qpu.batch_size", bounds=(1, 2, 4, 8, 16, 32, 64, 128)
        ).observe(job.num_circuits)
        if sim_span and job.start_time is not None and job.finish_time is not None:
            _telemetry.tracer.add_sim_span(
                "qpu.job",
                "qpu",
                job.device_name,
                job.start_time,
                job.finish_time - job.start_time,
                args={"circuits": job.num_circuits, "shots": job.shots},
            )

    # ------------------------------------------------------------------
    def device_free_at(self, device_name: str) -> float:
        """Simulation time at which the device's queue drains."""
        return self._endpoint(device_name).free_at

    def utilization_report(self, horizon_seconds: float | None = None) -> dict[str, dict[str, float]]:
        """Per-device utilization summary (the paper's imbalance discussion)."""
        report: dict[str, dict[str, float]] = {}
        for name, endpoint in self._endpoints.items():
            record = endpoint.record
            horizon = (
                float(horizon_seconds)
                if horizon_seconds is not None
                else max(record.last_finish_time, 1.0)
            )
            report[name] = {
                "jobs_completed": float(record.jobs_completed),
                "busy_seconds": record.busy_seconds,
                "queued_seconds": record.queued_seconds,
                "utilization": record.utilization(horizon),
            }
        return report
