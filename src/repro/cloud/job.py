"""Cloud job records."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

from ..simulator.result import ExecutionResult

__all__ = ["JobStatus", "CloudJob"]


class JobStatus(str, Enum):
    """Lifecycle of a cloud job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class CloudJob:
    """One submission to a device: a batch of circuits with shared shots.

    Attributes:
        job_id: unique id assigned by the provider.
        device_name: backend the job targets.
        num_circuits: number of circuits in the batch.
        shots: shots per circuit.
        submit_time: simulation time the job entered the queue.
        start_time: simulation time execution began.
        finish_time: simulation time all results were available.
        results: one :class:`ExecutionResult` per circuit (populated on
            completion).
        attempts: service attempts consumed (1 without fault injection).
        error: short failure description when ``status`` is ``FAILED``.
    """

    job_id: int
    device_name: str
    num_circuits: int
    shots: int
    submit_time: float
    start_time: float = 0.0
    finish_time: float = 0.0
    status: JobStatus = JobStatus.QUEUED
    results: list[ExecutionResult] = field(default_factory=list)
    attempts: int = 1
    error: str = ""

    @property
    def queue_seconds(self) -> float:
        """Time spent waiting in the device queue."""
        return max(0.0, self.start_time - self.submit_time)

    @property
    def execution_seconds(self) -> float:
        """Time spent executing on the device."""
        return max(0.0, self.finish_time - self.start_time)

    @property
    def turnaround_seconds(self) -> float:
        """Submission-to-completion latency."""
        return max(0.0, self.finish_time - self.submit_time)
