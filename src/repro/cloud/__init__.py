"""Discrete-event simulation of the shared quantum cloud."""

from .clock import SECONDS_PER_HOUR, VirtualClock, hours, seconds_to_hours
from .job import CloudJob, JobStatus
from .provider import CloudProvider, DeviceEndpoint, UtilizationRecord
from .queueing import (
    DEFAULT_QUEUE_MODELS,
    QueueModel,
    StatisticalQueuePolicy,
    queue_model_for,
)

__all__ = [
    "VirtualClock",
    "SECONDS_PER_HOUR",
    "hours",
    "seconds_to_hours",
    "CloudJob",
    "JobStatus",
    "QueueModel",
    "DEFAULT_QUEUE_MODELS",
    "queue_model_for",
    "StatisticalQueuePolicy",
    "CloudProvider",
    "DeviceEndpoint",
    "UtilizationRecord",
]
