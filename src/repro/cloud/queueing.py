"""Per-device queueing and congestion models.

The second and third challenges the paper motivates EQC with are
*prohibitively long execution time* (shared cloud devices sit behind long,
congestion-dependent queues) and *large utilization variance* (users pile
onto the best-rated devices, leaving others idle).  The queue model captures
both:

* every device has a base queue delay drawn lognormally around a
  device-specific congestion level;
* congestion follows a diurnal pattern (shared community load);
* popular devices (higher ``popularity``) see systematically longer queues,
  which is how the simulated fleet reproduces the paper's wild spread of
  single-device training times (hours on Belem, weeks on Santiago, months on
  Manhattan).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .clock import SECONDS_PER_HOUR

__all__ = [
    "QueueModel",
    "DEFAULT_QUEUE_MODELS",
    "queue_model_for",
    "StatisticalQueuePolicy",
]


@dataclass(frozen=True)
class QueueModel:
    """Stochastic queue-delay model for one device.

    Attributes:
        mean_wait_seconds: median queue wait when congestion is average.
        sigma: lognormal spread of the wait.
        popularity: 0..1 community load factor; higher = busier device.
        diurnal_amplitude: relative amplitude of the day/night load swing.
    """

    mean_wait_seconds: float = 60.0
    sigma: float = 0.6
    popularity: float = 0.5
    diurnal_amplitude: float = 0.4

    def __post_init__(self) -> None:
        if self.mean_wait_seconds < 0:
            raise ValueError("mean_wait_seconds must be non-negative")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0.0 <= self.popularity <= 1.0:
            raise ValueError("popularity must be within [0, 1]")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be within [0, 1]")

    # ------------------------------------------------------------------
    def congestion_factor(self, now_seconds: float) -> float:
        """Deterministic load multiplier at a simulation time (>= ~0.5)."""
        hour_of_day = (now_seconds / SECONDS_PER_HOUR) % 24.0
        diurnal = 1.0 + self.diurnal_amplitude * math.sin(
            2.0 * math.pi * (hour_of_day - 6.0) / 24.0
        )
        load = 0.5 + self.popularity
        return max(0.25, diurnal * load)

    def sample_wait(self, now_seconds: float, rng: np.random.Generator) -> float:
        """Sample a queue wait (seconds) for a job submitted at ``now_seconds``."""
        if self.mean_wait_seconds == 0:
            return 0.0
        base = rng.lognormal(mean=math.log(self.mean_wait_seconds), sigma=self.sigma)
        return float(base * self.congestion_factor(now_seconds))


#: Queue characteristics for the Table I devices.  Popular, well-rated
#: devices (Santiago, Manhattan, Toronto) carry the heaviest community load —
#: the imbalance the paper's Section I describes.
DEFAULT_QUEUE_MODELS: dict[str, QueueModel] = {
    "Lima": QueueModel(mean_wait_seconds=45.0, popularity=0.35),
    "x2": QueueModel(mean_wait_seconds=20.0, popularity=0.15),
    "Belem": QueueModel(mean_wait_seconds=40.0, popularity=0.35),
    "Quito": QueueModel(mean_wait_seconds=55.0, popularity=0.40),
    "Manila": QueueModel(mean_wait_seconds=60.0, popularity=0.45),
    "Santiago": QueueModel(mean_wait_seconds=900.0, popularity=0.85, sigma=0.9),
    "Bogota": QueueModel(mean_wait_seconds=70.0, popularity=0.45),
    "Lagos": QueueModel(mean_wait_seconds=80.0, popularity=0.50),
    "Casablanca": QueueModel(mean_wait_seconds=50.0, popularity=0.40),
    "Toronto": QueueModel(mean_wait_seconds=300.0, popularity=0.75, sigma=1.1),
    "Manhattan": QueueModel(mean_wait_seconds=5000.0, popularity=0.95, sigma=1.0),
}

_FALLBACK = QueueModel()


def queue_model_for(device_name: str) -> QueueModel:
    """The queue model for a device (a generic default for unknown names)."""
    return DEFAULT_QUEUE_MODELS.get(device_name, _FALLBACK)


class StatisticalQueuePolicy:
    """The closed-form queueing fallback: lognormal wait, no event kernel.

    This is the original ``CloudProvider.submit`` timing decision factored
    into a policy object, with the exact same RNG consumption (one
    ``sample_wait`` draw from the endpoint's stream per job), so seeded
    golden histories captured before the :mod:`repro.sched` subsystem
    existed remain bit-exact.  Background tenants, calibration downtime and
    policy-driven job ordering exist only on the kernel path — here the
    "other users" are a statistical distribution, not simulated jobs.

    Re-exported from :mod:`repro.sched.policies` as part of the scheduling
    policy family (defined here so ``cloud`` never imports ``sched``).
    """

    name = "statistical"

    def start_time(self, endpoint, now: float) -> float:
        """Service start for a job submitted at ``now`` on one endpoint."""
        queue_wait = endpoint.queue_model.sample_wait(now, endpoint.rng)
        return max(float(now) + queue_wait, endpoint.free_at)

    def __repr__(self) -> str:
        return "StatisticalQueuePolicy()"
