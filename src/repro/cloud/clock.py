"""A virtual clock for discrete-event simulation of the quantum cloud.

Every timing quantity in the reproduction — queue delays, job durations,
calibration ages, epochs-per-hour — is measured against this clock rather
than wall time, which makes multi-week training campaigns (the paper's
Manhattan run would take ~193 days) replayable in seconds and perfectly
deterministic.
"""

from __future__ import annotations

__all__ = ["VirtualClock", "SECONDS_PER_HOUR", "hours", "seconds_to_hours"]

SECONDS_PER_HOUR = 3600.0


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return float(value) * SECONDS_PER_HOUR


def seconds_to_hours(value: float) -> float:
    """Convert seconds to hours."""
    return float(value) / SECONDS_PER_HOUR


class VirtualClock:
    """A monotonically non-decreasing simulation clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("the clock cannot start before t=0")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self._now

    @property
    def now_hours(self) -> float:
        """Current simulation time, hours."""
        return self._now / SECONDS_PER_HOUR

    def advance(self, delta_seconds: float) -> float:
        """Move the clock forward by ``delta_seconds`` (must be >= 0)."""
        if delta_seconds < 0:
            raise ValueError("the clock cannot run backwards")
        self._now += float(delta_seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute timestamp (sleep-until).

        A ``timestamp`` at or before the current time is an explicit,
        guaranteed **no-op** — the clock never runs backwards and never
        raises here.  Scheduler correctness depends on this contract: the
        event kernel calls ``advance_to`` for every processed event, and the
        EQC master replays job completions out of global time order, so
        events legitimately carry timestamps the clock has already passed
        (see ``repro.sched.kernel``).  Pinned by
        ``tests/test_cloud/test_clock.py::TestVirtualClock::test_advance_to_past_is_documented_noop``.
        """
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now:.1f}s = {self.now_hours:.2f}h)"
