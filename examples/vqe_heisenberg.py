#!/usr/bin/env python
"""The paper's Fig. 6 scenario at example scale: Heisenberg VQE on an ensemble.

Reproduces the structure of the Fig. 6 evaluation — the ideal baseline,
several independent single-device runs, and the EQC ensemble — and prints the
energy traces, converged errors and epochs/hour, plus the fleet utilization
report that motivates ensembling in the first place.

Run with::

    python examples/vqe_heisenberg.py            # ~2-3 minutes
    python examples/vqe_heisenberg.py --epochs 250 --full-fleet   # paper scale
"""

from __future__ import annotations

import argparse

from repro.analysis import format_series, format_table
from repro.experiments.fig6_vqe import VQEExperimentConfig, render_fig6, run_fig6_vqe
from repro.experiments.speedup import render_speedup, speedup_from_result


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=60, help="training epochs per system")
    parser.add_argument("--shots", type=int, default=4096, help="shots per circuit")
    parser.add_argument(
        "--full-fleet",
        action="store_true",
        help="use the paper's 6 single devices and 10-device ensemble "
        "(default: a reduced 3-device comparison)",
    )
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    if args.full_fleet:
        config = VQEExperimentConfig(
            epochs=args.epochs, shots=args.shots, eqc_runs=2, seed=args.seed
        )
    else:
        config = VQEExperimentConfig(
            epochs=args.epochs,
            shots=args.shots,
            single_devices=("x2", "Bogota", "Casablanca"),
            ensemble_devices=("x2", "Belem", "Quito", "Bogota", "Casablanca", "Lima"),
            eqc_runs=1,
            seed=args.seed,
        )

    print("Running the Heisenberg VQE experiment (this trains every system)...")
    result = run_fig6_vqe(config)

    print()
    print(render_fig6(result))

    print("\nEnergy traces (down-sampled):")
    print(
        format_series(
            "ideal", result.ideal.epochs.tolist(), result.ideal.losses.tolist(), max_points=12
        )
    )
    for name, history in result.singles.items():
        print(
            format_series(name, history.epochs.tolist(), history.losses.tolist(), max_points=12)
        )
    eqc = result.eqc_mean_history
    print(format_series("EQC", eqc.epochs.tolist(), eqc.losses.tolist(), max_points=12))

    print("\nSpeedup summary:")
    print(render_speedup(speedup_from_result(result)))

    print("\nFleet utilization during the EQC run:")
    utilization = eqc.metadata["utilization"]
    rows = [
        {"device": name, **{k: v for k, v in stats.items()}}
        for name, stats in utilization.items()
    ]
    print(format_table(rows))


if __name__ == "__main__":
    main()
