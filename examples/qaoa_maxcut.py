#!/usr/bin/env python
"""QAOA MaxCut on a quantum ensemble — the paper's Fig. 10-12 scenario.

Optimizes the 2-parameter QAOA circuit for the 4-node ring MaxCut, compares
single-device training against the unweighted and weighted EQC ensembles, and
decodes the trained circuit into an actual graph cut.

Run with::

    python examples/qaoa_maxcut.py
    python examples/qaoa_maxcut.py --nodes 5 --extra-edges   # a custom graph
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import BOUNDS_MODERATE, EQCConfig, EQCEnsemble, EnergyObjective
from repro.analysis import format_table
from repro.baselines import SingleDeviceTrainer
from repro.circuit import qaoa_maxcut_ansatz
from repro.hamiltonian import maxcut_graph, maxcut_hamiltonian
from repro.simulator import sample_circuit_ideal
from repro.vqa import QAOAProblem, ring_maxcut_qaoa_problem


def build_problem(nodes: int, extra_edges: bool) -> QAOAProblem:
    if nodes == 4 and not extra_edges:
        return ring_maxcut_qaoa_problem()
    edges = [(i, (i + 1) % nodes) for i in range(nodes)]
    if extra_edges:
        edges.append((0, nodes // 2))
    graph = maxcut_graph(nodes, edges)
    return QAOAProblem(
        name=f"maxcut_{nodes}nodes",
        graph=graph,
        hamiltonian=maxcut_hamiltonian(graph),
        ansatz=qaoa_maxcut_ansatz(nodes, edges, measure=False),
    )


def decode_cut(problem: QAOAProblem, parameters, shots: int = 4096) -> tuple[str, float]:
    """Sample the trained circuit ideally and return the best observed cut."""
    circuit = problem.ansatz.copy()
    circuit.measure_all()
    bound = circuit.bind_parameters(problem.estimator.bindings(parameters))
    counts = sample_circuit_ideal(bound, shots, np.random.default_rng(0))
    best_bits, best_value = "", -1.0
    for bitstring in counts:
        value = problem.cut_of_bitstring(bitstring)
        if value > best_value:
            best_bits, best_value = bitstring, value
    return best_bits, best_value


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--extra-edges", action="store_true")
    parser.add_argument("--iterations", type=int, default=40)
    parser.add_argument("--shots", type=int, default=4096)
    args = parser.parse_args()

    problem = build_problem(args.nodes, args.extra_edges)
    theta0 = problem.random_initial_parameters(seed=11)
    print(f"MaxCut instance: {problem.name}, optimal cut = {problem.optimal_cut_value:.0f} "
          f"(partition {problem.optimal_cut_bits})\n")

    rows = []
    trained = {}

    single = SingleDeviceTrainer(
        EnergyObjective(problem.estimator), "Quito", shots=args.shots, seed=11, learning_rate=0.15
    ).train(theta0, num_epochs=args.iterations)
    trained["single[Quito]"] = single

    for label, bounds in (("EQC unweighted", None), ("EQC weights 0.5-1.5", BOUNDS_MODERATE)):
        ensemble = EQCEnsemble(
            EnergyObjective(problem.estimator),
            EQCConfig(
                device_names=("Belem", "Quito", "Bogota", "Manila", "Casablanca", "Lima"),
                shots=args.shots,
                weight_bounds=bounds,
                seed=11,
                learning_rate=0.15,
                label=label,
            ),
        )
        trained[label] = ensemble.train(theta0, num_epochs=args.iterations)

    for label, history in trained.items():
        final = history.final_loss(5)
        rows.append(
            {
                "system": label,
                "final_cost_per_edge": problem.normalized_cost(final),
                "approx_ratio": problem.approximation_ratio(final),
                "hours": history.total_hours(),
                "iters_per_hour": history.epochs_per_hour(),
            }
        )
    print(format_table(rows))

    best_label = min(rows, key=lambda row: row["final_cost_per_edge"])["system"]
    bits, value = decode_cut(problem, trained[best_label].final_parameters)
    print(f"\nBest system: {best_label}")
    print(f"Decoded partition {bits} cuts {value:.0f} of {problem.optimal_cut_value:.0f} edges")


if __name__ == "__main__":
    main()
