#!/usr/bin/env python
"""Quickstart: train a small VQE on a quantum ensemble in under a minute.

This example walks through the whole EQC workflow on a reduced scale:

1. build the paper's 4-qubit Heisenberg VQE problem,
2. train it on the noiseless reference simulator,
3. train it on a 4-device EQC ensemble (asynchronous, PCorrect-weighted),
4. train it on a single noisy device for comparison,
5. print the error/throughput comparison.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BOUNDS_MODERATE,
    EQCConfig,
    EQCEnsemble,
    EnergyObjective,
    IdealTrainer,
    SingleDeviceTrainer,
    heisenberg_vqe_problem,
)
from repro.analysis import format_table


def main() -> None:
    epochs = 25
    shots = 2048

    problem = heisenberg_vqe_problem()
    theta0 = problem.random_initial_parameters(seed=42)
    print(f"Problem: {problem.name}")
    print(f"  qubits={problem.num_qubits}  parameters={problem.num_parameters}")
    print(f"  exact ground energy = {problem.ground_energy:.4f}\n")

    # 1. the noiseless reference -------------------------------------------------
    ideal = IdealTrainer(problem.estimator, shots=shots).train(theta0, num_epochs=epochs)
    reference = ideal.final_loss(5)
    print(f"Ideal simulator converged to {reference:.4f} after {epochs} epochs")

    # 2. the EQC ensemble --------------------------------------------------------
    ensemble = EQCEnsemble(
        EnergyObjective(problem.estimator),
        EQCConfig(
            device_names=("x2", "Belem", "Bogota", "Casablanca"),
            shots=shots,
            weight_bounds=BOUNDS_MODERATE,
            seed=42,
        ),
    )
    eqc = ensemble.train(theta0, num_epochs=epochs)
    print(
        f"EQC ensemble ({len(ensemble.device_names)} devices) reached "
        f"{eqc.final_loss(5):.4f} in {eqc.total_hours():.1f} simulated hours "
        f"({eqc.epochs_per_hour():.1f} epochs/hour)"
    )

    # 3. a single noisy device ---------------------------------------------------
    single = SingleDeviceTrainer(
        EnergyObjective(problem.estimator), "Bogota", shots=shots, seed=42
    ).train(theta0, num_epochs=epochs)
    print(
        f"Single device (Bogota) reached {single.final_loss(5):.4f} in "
        f"{single.total_hours():.1f} simulated hours "
        f"({single.epochs_per_hour():.2f} epochs/hour)\n"
    )

    # 4. the comparison ----------------------------------------------------------
    rows = []
    for history in (ideal, eqc, single):
        rows.append(
            {
                "system": history.label,
                "final_energy": history.final_loss(5),
                "error_vs_ideal_%": 100.0 * history.error_vs(reference),
                "hours": history.total_hours(),
                "epochs_per_hour": history.epochs_per_hour(),
            }
        )
    print(format_table(rows))
    speedup = eqc.epochs_per_hour() / single.epochs_per_hour()
    print(f"\nEQC speedup over the single device: {speedup:.1f}x")


if __name__ == "__main__":
    main()
