#!/usr/bin/env python
"""Inspecting devices and the PCorrect weighting system (paper Fig. 4/5).

This example does not train anything; it explores the substrate the ensemble
is built on:

* the Table I device catalog and each device's topology,
* how the same circuit transpiles onto different coupling maps,
* the Eq. 2 ``PCorrect`` estimate for each device and how it degrades as the
  calibration ages,
* the GHZ validation of the analytic model (calculated vs observed error),
* the normalized gradient weights the EQC master would assign right now.

Run with::

    python examples/device_weighting.py
"""

from __future__ import annotations

from repro import estimate_p_correct, normalize_weights, WeightBounds
from repro.analysis import format_table
from repro.circuit import hardware_efficient_ansatz
from repro.cloud import hours
from repro.devices import DEFAULT_VQE_FLEET, build_qpu
from repro.experiments.fig4_ghz import fig4_ghz_validation, render_fig4
from repro.experiments.table1 import render_table1
from repro.transpiler import transpile


def main() -> None:
    print("=== Table I: the simulated fleet ===")
    print(render_table1())

    circuit = hardware_efficient_ansatz(4)
    print("\n=== Transpiling the Fig. 8 VQE ansatz onto each device ===")
    rows = []
    transpiled = {}
    for name in DEFAULT_VQE_FLEET:
        qpu = build_qpu(name)
        result = transpile(circuit, qpu.topology)
        transpiled[name] = (qpu, result)
        rows.append(
            {
                "device": name,
                "topology": qpu.topology.name,
                "swaps": result.num_swaps,
                "G1": result.footprint.num_single_qubit_gates,
                "G2": result.footprint.num_two_qubit_gates,
                "critical_depth": result.footprint.critical_depth,
            }
        )
    print(format_table(rows))

    print("\n=== PCorrect (Eq. 2) per device, fresh vs 12-hour-old calibration ===")
    rows = []
    p_fresh = {}
    for name, (qpu, result) in transpiled.items():
        fresh = estimate_p_correct(qpu.estimated_calibration(hours(0.02)), result.footprint)
        stale = estimate_p_correct(qpu.estimated_calibration(hours(12.0)), result.footprint)
        p_fresh[name] = fresh
        rows.append({"device": name, "p_correct_fresh": fresh, "p_correct_12h": stale})
    print(format_table(rows))

    print("\n=== Gradient weights the master would assign (bounds [0.5, 1.5]) ===")
    weights = normalize_weights(p_fresh, WeightBounds(0.5, 1.5))
    print(format_table([{"device": k, "weight": v} for k, v in sorted(weights.items())]))

    print("\n=== Fig. 4 validation: calculated vs observed GHZ error ===")
    result = fig4_ghz_validation(shots=4096, repeats=2)
    print(render_fig4(result))


if __name__ == "__main__":
    main()
