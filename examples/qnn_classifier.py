#!/usr/bin/env python
"""Training a quantum neural network classifier on the EQC ensemble.

The paper's Section III-A describes how EQC decomposes QNN training: one
gradient task per (parameter, data point) pair, with the master averaging the
returned per-sample gradients asynchronously.  This example trains a small
data-reuploading classifier on a synthetic dataset with that decomposition
and reports loss and accuracy before/after.

Run with::

    python examples/qnn_classifier.py
"""

from __future__ import annotations

import argparse

from repro import EQCConfig, EQCEnsemble, QnnObjective
from repro.analysis import format_table
from repro.vqa import QNNProblem, make_synthetic_dataset, qnn_task_cycle


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=8)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--shots", type=int, default=2048)
    args = parser.parse_args()

    dataset = make_synthetic_dataset(num_samples=args.samples, feature_dimension=4, seed=3)
    problem = QNNProblem("qnn_classifier", dataset, num_qubits=4, num_layers=1)
    theta0 = problem.random_initial_parameters(seed=3)

    print(
        f"QNN: {problem.num_qubits} qubits, {problem.num_parameters} parameters, "
        f"{len(dataset)} training samples"
    )
    print(
        f"before training: loss={problem.dataset_loss(theta0):.4f} "
        f"accuracy={problem.accuracy(theta0):.2f}\n"
    )

    # One epoch = one pass over every (parameter, data point) pair.
    queue = qnn_task_cycle(problem.num_parameters, len(dataset))
    ensemble = EQCEnsemble(
        QnnObjective(problem),
        EQCConfig(
            device_names=("Belem", "Quito", "Bogota", "Manila"),
            shots=args.shots,
            seed=3,
            learning_rate=0.3,
            label="EQC QNN",
        ),
    )
    history = ensemble.train(theta0, num_epochs=args.epochs, task_queue=queue)

    theta = history.final_parameters
    print(
        format_table(
            [
                {
                    "epoch": record.epoch,
                    "sim_hours": record.sim_time_hours,
                    "dataset_loss": record.loss,
                }
                for record in history.records
            ]
        )
    )
    print(
        f"\nafter training: loss={problem.dataset_loss(theta):.4f} "
        f"accuracy={problem.accuracy(theta):.2f}"
    )
    print(
        f"trained for {history.total_hours():.1f} simulated hours on "
        f"{len(ensemble.device_names)} devices "
        f"({history.total_updates} asynchronous updates)"
    )


if __name__ == "__main__":
    main()
