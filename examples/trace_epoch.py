#!/usr/bin/env python
"""Trace one EQC training epoch and write a Perfetto-loadable trace.

This example turns on the telemetry layer, trains one epoch of the paper's
Heisenberg VQE on a small ensemble competing with background tenant traffic,
and writes:

* ``trace.json`` — Chrome trace-event JSON.  Open it at
  https://ui.perfetto.dev (or ``chrome://tracing``) to see wall-clock spans
  (engine executions, EQC epochs) next to the simulated timeline: one lane
  per device showing every scheduled job, plus calibration-downtime lanes.
* optionally a JSON run report (``--report report.json``) with every
  counter, gauge, and histogram quantile the run collected.

Run with::

    python examples/trace_epoch.py [--out trace.json] [--report report.json]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import EQCConfig, EQCEnsemble, EnergyObjective
from repro.telemetry import TELEMETRY, render_text, run_report, write_report
from repro.vqa import heisenberg_vqe_problem


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="trace.json", help="trace output path")
    parser.add_argument("--report", default=None, help="optional report JSON path")
    args = parser.parse_args()

    TELEMETRY.reset()
    TELEMETRY.enable()

    problem = heisenberg_vqe_problem()
    theta = np.linspace(0.1, 1.6, problem.num_parameters)
    config = EQCConfig(
        device_names=("x2", "Belem", "Bogota"),
        shots=256,
        seed=3,
        scheduling_policy="fifo",
        background_tenants=25,
    )
    ensemble = EQCEnsemble(EnergyObjective(problem.estimator), config)
    history = ensemble.train(theta, num_epochs=1)

    TELEMETRY.tracer.write(args.out)
    print(f"trained 1 epoch (loss {history.records[-1].loss:.4f})")
    print(f"wrote {len(TELEMETRY.tracer)} spans to {args.out}")
    print("open it at https://ui.perfetto.dev")

    if args.report:
        report = write_report(args.report)
        print(f"wrote report to {args.report}\n")
        print(render_text(report))
    else:
        print("\n" + render_text(run_report()))


if __name__ == "__main__":
    main()
