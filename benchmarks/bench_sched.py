"""Scheduler benchmark — kernel throughput, contention sweep, policy tournament.

Three sections gate the ``sched`` subsystem, all recorded in
``BENCH_sched.json`` at the repository root so the scheduler's performance
trajectory is tracked across PRs:

* **kernel** — events/second through the discrete-event heap, measured two
  ways and labelled by mode so a 60k-event smoke number can never be
  mistaken for the kernel's throughput again.  ``batched`` is the hot path
  (sorted-run admission via ``schedule_batch`` + the ``run_until_time``
  drain) at 1M events in full mode with a **1M events/s floor** (500k in
  smoke); ``per_event`` is the legacy one-``schedule``-one-``step`` loop,
  kept honest by its original 50k events/s floor.
* **contention sweep** — real EQC training epochs/hour under 0/100/1000
  background tenants on the 3-device shared fleet, which must degrade
  monotonically (more traffic, slower training — the property the subsystem
  exists to model).
* **tournament** — the (devices x tenants x policy) grid of
  :mod:`repro.sched.tournament`.  The acceptance floor is the paper's
  regime: at 1000 background tenants at least one policy must sustain
  >= 1.0 foreground epochs/hour with a rejected fraction < 0.5.

``--smoke`` runs a reduced-but-complete version for CI (smaller kernel
batch, 1 training epoch, the 2-policy x 2-tenant-load tournament grid).
"""

from __future__ import annotations

import time

import numpy as np

from _common import bench_json_path, bench_main, write_bench_json

from repro import EQCConfig, EQCEnsemble, EnergyObjective
from repro.sched import EventKernel
from repro.sched.tournament import FULL_CONFIG, SMOKE_CONFIG, run_tournament
from repro.vqa import heisenberg_vqe_problem

KERNEL_EVENTS_BATCHED = 1_000_000
KERNEL_EVENTS_BATCHED_SMOKE = 200_000
KERNEL_EVENTS_PER_EVENT = 200_000
KERNEL_EVENTS_PER_EVENT_SMOKE = 60_000
KERNEL_STREAMS = 32
KERNEL_REPEATS = 3
MIN_BATCHED_EVENTS_PER_SEC = 1_000_000.0
MIN_BATCHED_EVENTS_PER_SEC_SMOKE = 500_000.0
MIN_PER_EVENT_EVENTS_PER_SEC = 50_000.0
TENANT_LEVELS = (0, 100, 1000)
DEVICES = ("x2", "Belem", "Bogota")
BENCH_PATH = bench_json_path("sched")


def _noop(now: float) -> None:
    return None


def time_kernel_batched(
    num_events: int, streams: int = KERNEL_STREAMS, repeats: int = KERNEL_REPEATS
) -> dict:
    """Best-of-N wall time for the sorted-run hot path.

    ``streams`` presorted timestamp arrays (the shape chunked arrival
    generation produces) are admitted via ``schedule_batch`` and drained
    with ``run_until_time`` — the timer covers admission + dispatch, not
    the numpy timestamp generation, which belongs to the workload layer.
    """
    per_stream = num_events // streams
    total = per_stream * streams
    best = float("inf")
    for _ in range(repeats):
        kernel = EventKernel(seed=1)
        chunks = [
            np.sort(kernel.rng_stream(f"bench/{s}").uniform(0.0, 1e6, size=per_stream))
            for s in range(streams)
        ]
        start = time.perf_counter()
        for chunk in chunks:
            kernel.schedule_batch(chunk, _noop)
        kernel.run_until_time(1e6 + 1.0)
        best = min(best, time.perf_counter() - start)
        assert kernel.events_processed == total
        assert kernel.pending == 0
    return {
        "style": "batched (schedule_batch + run_until_time)",
        "events": total,
        "streams": streams,
        "seconds": best,
        "events_per_sec": total / best,
    }


def time_kernel_per_event(num_events: int, repeats: int = KERNEL_REPEATS) -> dict:
    """Best-of-N wall time for the legacy one-schedule-one-step loop."""
    best = float("inf")
    for _ in range(repeats):
        kernel = EventKernel(seed=1)
        times = kernel.rng_stream("bench").uniform(0.0, 1e6, size=num_events)
        start = time.perf_counter()
        for t in times:
            kernel.schedule(float(t), _noop)
        while kernel.step() is not None:
            pass
        best = min(best, time.perf_counter() - start)
        assert kernel.events_processed == num_events
    return {
        "style": "per_event (schedule + step)",
        "events": num_events,
        "seconds": best,
        "events_per_sec": num_events / best,
    }


def run_contention_sweep(num_epochs: int, shots: int) -> list[dict]:
    """EQC epochs/hour at each background tenant level (FIFO policy)."""
    problem = heisenberg_vqe_problem()
    theta = np.linspace(0.1, 1.6, problem.num_parameters)
    sweep = []
    for tenants in TENANT_LEVELS:
        config = EQCConfig(
            device_names=DEVICES,
            shots=shots,
            seed=7,
            scheduling_policy="fifo",
            background_tenants=tenants,
        )
        ensemble = EQCEnsemble(EnergyObjective(problem.estimator), config)
        start = time.perf_counter()
        history = ensemble.train(theta, num_epochs=num_epochs)
        metrics = history.metadata["scheduler"]
        slo = metrics["slo"]
        sweep.append(
            {
                "background_tenants": tenants,
                "epochs_per_hour": history.epochs_per_hour(),
                "simulated_hours": history.total_hours(),
                "events_processed": metrics["events_processed"],
                "tenant_jobs_rejected": sum(
                    d["jobs_rejected"] for d in metrics["devices"].values()
                ),
                "queue_wait_mean": slo["queue_wait_mean"],
                "queue_wait_p50": slo["queue_wait_p50"],
                "queue_wait_p99": slo["queue_wait_p99"],
                "rejected_fraction": slo["rejected_fraction"],
                "tenant_fairness_jain": slo["tenant_fairness_jain"],
                "wall_seconds": time.perf_counter() - start,
            }
        )
    return sweep


def run_sched_benchmark(smoke: bool = False) -> dict:
    mode = "smoke" if smoke else "full"
    batched_events = KERNEL_EVENTS_BATCHED_SMOKE if smoke else KERNEL_EVENTS_BATCHED
    per_event_events = (
        KERNEL_EVENTS_PER_EVENT_SMOKE if smoke else KERNEL_EVENTS_PER_EVENT
    )
    floor = MIN_BATCHED_EVENTS_PER_SEC_SMOKE if smoke else MIN_BATCHED_EVENTS_PER_SEC
    num_epochs = 1 if smoke else 2
    shots = 128
    return {
        "benchmark": "sched",
        "config": {
            "smoke": smoke,
            "devices": list(DEVICES),
            "num_epochs": num_epochs,
            "shots": shots,
            "policy": "fifo",
        },
        "kernel": {
            "mode": mode,
            "floor_events_per_sec": floor,
            "batched": time_kernel_batched(batched_events),
            "per_event": time_kernel_per_event(per_event_events),
        },
        "contention": run_contention_sweep(num_epochs=num_epochs, shots=shots),
        "tournament": run_tournament(SMOKE_CONFIG if smoke else FULL_CONFIG),
    }


def check_and_record(result: dict) -> None:
    """Persist the result and enforce the acceptance floors."""
    write_bench_json(BENCH_PATH, result)
    kernel = result["kernel"]
    batched = kernel["batched"]["events_per_sec"]
    assert batched >= kernel["floor_events_per_sec"], (
        f"batched kernel throughput below the {kernel['mode']} floor "
        f"{kernel['floor_events_per_sec']:,.0f}/s: {batched:,.0f}/s"
    )
    per_event = kernel["per_event"]["events_per_sec"]
    assert per_event >= MIN_PER_EVENT_EVENTS_PER_SEC, (
        f"per-event kernel throughput regressed below "
        f"{MIN_PER_EVENT_EVENTS_PER_SEC:,.0f}/s: {per_event:,.0f}/s"
    )

    rates = [cell["epochs_per_hour"] for cell in result["contention"]]
    assert all(a > b for a, b in zip(rates, rates[1:])), (
        f"EQC epochs/hour must degrade monotonically with tenant load: {rates}"
    )
    for cell in result["contention"]:
        for field in ("queue_wait_p50", "queue_wait_p99", "tenant_fairness_jain"):
            assert field in cell, f"contention cell missing SLO field {field!r}"
        assert 0.0 < cell["tenant_fairness_jain"] <= 1.0 + 1e-12, (
            f"fairness index out of range: {cell['tenant_fairness_jain']}"
        )

    # The paper's regime: some policy must keep foreground training usable
    # at 1000 background tenants without rejecting most of the community.
    survivors = [
        cell
        for cell in result["tournament"]["cells"]
        if cell["tenants"] == 1000
        and cell["epochs_per_hour"] >= 1.0
        and cell["slo_rejected_fraction"] < 0.5
    ]
    assert survivors, (
        "no tournament policy sustained >=1.0 epochs/hour with <0.5 rejected "
        "fraction at 1000 background tenants"
    )


def test_sched_benchmark():
    result = run_sched_benchmark(smoke=True)
    kernel = result["kernel"]
    print("\n=== Scheduler: kernel, contention sweep, tournament (smoke) ===")
    for style in ("batched", "per_event"):
        section = kernel[style]
        print(
            f"kernel[{style}]: {section['events_per_sec']:,.0f} events/sec "
            f"({section['events']:,} events, {kernel['mode']} mode)"
        )
    for cell in result["contention"]:
        print(
            f"{cell['background_tenants']:>5} tenants | "
            f"{cell['epochs_per_hour']:.3f} epochs/hour | "
            f"{cell['events_processed']} events | "
            f"{cell['tenant_jobs_rejected']} rejected"
        )
    for cell in result["tournament"]["cells"]:
        print(
            f"tournament {cell['devices']:>3}d {cell['tenants']:>6}t "
            f"{cell['policy']:<14} {cell['epochs_per_hour']:7.2f} eph | "
            f"rej {cell['slo_rejected_fraction']:.1%}"
        )
    check_and_record(result)


if __name__ == "__main__":
    bench_main(lambda smoke: run_sched_benchmark(smoke=smoke), check_and_record)
