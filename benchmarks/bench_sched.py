"""Scheduler benchmark — kernel throughput and EQC-under-contention sweep.

Two numbers gate the ``sched`` subsystem:

* **kernel throughput** — events/second through the discrete-event heap
  (schedule + pop + dispatch).  The scheduler must stay a negligible cost
  next to the statevector physics; the floor is 50k events/sec.
* **contention sweep** — EQC epochs/hour under 0/100/1000 background
  tenants on the shared fleet, which must degrade monotonically (more
  traffic, slower training — the property the subsystem exists to model).

Results land in ``BENCH_sched.json`` at the repository root so the
scheduler's performance trajectory is tracked across PRs.  ``--smoke`` runs
a reduced-but-complete version for CI.
"""

from __future__ import annotations

import time

import numpy as np

from _common import bench_json_path, bench_main, write_bench_json

from repro import EQCConfig, EQCEnsemble, EnergyObjective
from repro.sched import EventKernel
from repro.vqa import heisenberg_vqe_problem

KERNEL_EVENTS = 200_000
KERNEL_EVENTS_SMOKE = 60_000
KERNEL_REPEATS = 3
MIN_EVENTS_PER_SEC = 50_000.0
TENANT_LEVELS = (0, 100, 1000)
DEVICES = ("x2", "Belem", "Bogota")
BENCH_PATH = bench_json_path("sched")


def time_kernel(num_events: int, repeats: int = KERNEL_REPEATS) -> dict:
    """Best-of-N wall time to schedule and drain ``num_events`` events."""
    best = float("inf")
    for _ in range(repeats):
        kernel = EventKernel(seed=1)
        times = kernel.rng_stream("bench").uniform(0.0, 1e6, size=num_events)
        start = time.perf_counter()
        for t in times:
            kernel.schedule(float(t), _noop)
        while kernel.step() is not None:
            pass
        best = min(best, time.perf_counter() - start)
        assert kernel.events_processed == num_events
    return {
        "events": num_events,
        "seconds": best,
        "events_per_sec": num_events / best,
    }


def _noop(now: float) -> None:
    return None


def run_contention_sweep(num_epochs: int, shots: int) -> list[dict]:
    """EQC epochs/hour at each background tenant level (FIFO policy)."""
    problem = heisenberg_vqe_problem()
    theta = np.linspace(0.1, 1.6, problem.num_parameters)
    sweep = []
    for tenants in TENANT_LEVELS:
        config = EQCConfig(
            device_names=DEVICES,
            shots=shots,
            seed=7,
            scheduling_policy="fifo",
            background_tenants=tenants,
        )
        ensemble = EQCEnsemble(EnergyObjective(problem.estimator), config)
        start = time.perf_counter()
        history = ensemble.train(theta, num_epochs=num_epochs)
        metrics = history.metadata["scheduler"]
        slo = metrics["slo"]
        sweep.append(
            {
                "background_tenants": tenants,
                "epochs_per_hour": history.epochs_per_hour(),
                "simulated_hours": history.total_hours(),
                "events_processed": metrics["events_processed"],
                "tenant_jobs_rejected": sum(
                    d["jobs_rejected"] for d in metrics["devices"].values()
                ),
                "queue_wait_mean": slo["queue_wait_mean"],
                "queue_wait_p50": slo["queue_wait_p50"],
                "queue_wait_p99": slo["queue_wait_p99"],
                "rejected_fraction": slo["rejected_fraction"],
                "tenant_fairness_jain": slo["tenant_fairness_jain"],
                "wall_seconds": time.perf_counter() - start,
            }
        )
    return sweep


def run_sched_benchmark(smoke: bool = False) -> dict:
    kernel_events = KERNEL_EVENTS_SMOKE if smoke else KERNEL_EVENTS
    num_epochs = 1 if smoke else 2
    shots = 128
    return {
        "benchmark": "sched",
        "config": {
            "smoke": smoke,
            "devices": list(DEVICES),
            "num_epochs": num_epochs,
            "shots": shots,
            "policy": "fifo",
        },
        "kernel": time_kernel(kernel_events),
        "contention": run_contention_sweep(num_epochs=num_epochs, shots=shots),
    }


def check_and_record(result: dict) -> None:
    """Persist the result and enforce the acceptance criteria."""
    write_bench_json(BENCH_PATH, result)
    throughput = result["kernel"]["events_per_sec"]
    assert throughput >= MIN_EVENTS_PER_SEC, (
        f"kernel throughput regressed below {MIN_EVENTS_PER_SEC:.0f}/s: "
        f"{throughput:.0f}/s"
    )
    rates = [cell["epochs_per_hour"] for cell in result["contention"]]
    assert all(a > b for a, b in zip(rates, rates[1:])), (
        f"EQC epochs/hour must degrade monotonically with tenant load: {rates}"
    )
    for cell in result["contention"]:
        for field in ("queue_wait_p50", "queue_wait_p99", "tenant_fairness_jain"):
            assert field in cell, f"contention cell missing SLO field {field!r}"
        assert 0.0 < cell["tenant_fairness_jain"] <= 1.0 + 1e-12, (
            f"fairness index out of range: {cell['tenant_fairness_jain']}"
        )


def test_sched_benchmark():
    result = run_sched_benchmark(smoke=True)
    kernel = result["kernel"]
    print("\n=== Scheduler: kernel throughput and contention sweep (smoke) ===")
    print(f"kernel: {kernel['events_per_sec']:,.0f} events/sec ({kernel['events']} events)")
    for cell in result["contention"]:
        print(
            f"{cell['background_tenants']:>5} tenants | "
            f"{cell['epochs_per_hour']:.3f} epochs/hour | "
            f"{cell['events_processed']} events | "
            f"{cell['tenant_jobs_rejected']} rejected"
        )
    check_and_record(result)


if __name__ == "__main__":
    bench_main(lambda smoke: run_sched_benchmark(smoke=smoke), check_and_record)
