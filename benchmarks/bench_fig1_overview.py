"""Figure 1 — motivating overview: error and run time, 3 devices vs EQC.

This is a reduced Fig. 6 restricted to Casablanca, x2 and Bogota (the three
devices of the paper's Figure 1), plotting VQE error rate and total run time.
"""

from repro.experiments.fig1_overview import fig1_overview, render_fig1
from repro.experiments.fig6_vqe import VQEExperimentConfig, run_fig6_vqe


def test_fig1_overview(benchmark, bench_scale):
    config = VQEExperimentConfig(
        epochs=min(100, bench_scale["vqe_epochs"]),
        shots=bench_scale["shots"],
        single_devices=("Casablanca", "x2", "Bogota"),
        eqc_runs=1,
        seed=17,
    )
    result = benchmark.pedantic(run_fig6_vqe, args=(config,), rounds=1, iterations=1)
    rows = fig1_overview(result=result, devices=("Casablanca", "x2", "Bogota"))

    print("\n=== Figure 1: VQE error rate and run time ===")
    print(render_fig1(rows))

    by_system = {row.system: row for row in rows}
    # EQC finishes the same number of epochs much faster than any single device
    assert by_system["EQC"].run_hours < min(
        by_system[d].run_hours for d in ("Casablanca", "x2", "Bogota")
    )
    # and its error is not the worst of the group
    assert by_system["EQC"].error_pct < max(
        by_system[d].error_pct for d in ("Casablanca", "x2", "Bogota")
    )
