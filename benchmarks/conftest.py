"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the resulting rows/series (the repository has no plotting dependencies, so
"regenerating a figure" means producing its data in tabular form).

Scale: the paper's VQE experiments run 250 epochs; the benchmarks default to
a reduced-but-shape-preserving scale (see ``VQE_EPOCHS`` below — convergence
happens well before the cut-off, so who-wins/by-how-much is unaffected) to
keep the full harness runnable in minutes.  Set ``EQC_BENCH_FULL=1`` to run
the paper-scale configuration.
"""

from __future__ import annotations

import os

import pytest

#: Paper scale: 250 VQE epochs, 3 EQC repetitions, 50 QAOA iterations.
FULL_SCALE = os.environ.get("EQC_BENCH_FULL", "0") == "1"

VQE_EPOCHS = 250 if FULL_SCALE else 120
EQC_RUNS = 3 if FULL_SCALE else 2
QAOA_ITERATIONS = 50
SHOTS = 8192 if FULL_SCALE else 4096


@pytest.fixture(scope="session")
def bench_scale() -> dict:
    """The scale knobs shared by every benchmark."""
    return {
        "full": FULL_SCALE,
        "vqe_epochs": VQE_EPOCHS,
        "eqc_runs": EQC_RUNS,
        "qaoa_iterations": QAOA_ITERATIONS,
        "shots": SHOTS,
    }
