"""Figure 12 — weighted vs unweighted QAOA EQC and the best-cost ranking."""

from repro.experiments.fig11_qaoa import QAOAExperimentConfig, run_fig11_qaoa
from repro.experiments.fig12_weighted_qaoa import (
    WeightedQAOAConfig,
    render_fig12,
    run_fig12_weighted_qaoa,
)


def test_fig12_weighted_qaoa(benchmark, bench_scale):
    baseline = run_fig11_qaoa(
        QAOAExperimentConfig(
            iterations=bench_scale["qaoa_iterations"],
            shots=bench_scale["shots"],
            eqc_runs=1,
            seed=11,
            run_ideal_reference=False,
        )
    )
    config = WeightedQAOAConfig(
        iterations=bench_scale["qaoa_iterations"],
        shots=bench_scale["shots"],
        seed=11,
    )
    result = benchmark.pedantic(
        run_fig12_weighted_qaoa,
        kwargs={"config": config, "baseline": baseline},
        rounds=1,
        iterations=1,
    )

    print("\n=== Figure 12: weighted vs unweighted QAOA EQC ===")
    print(render_fig12(result))

    problem = result.problem()
    best_costs = {
        label: problem.normalized_cost(history.best_loss())
        for label, history in result.runs.items()
    }
    print("best costs:", {k: round(v, 4) for k, v in best_costs.items()})

    # all runs improve toward the cut; costs stay in range
    assert all(-1.0 <= cost <= 0.0 for cost in best_costs.values())
    # the best weighted configuration is at least as good as the unweighted one
    # (small tolerance: the 2-parameter QAOA is noisy at this scale)
    weighted_best = min(
        cost for label, cost in best_costs.items() if label != "no weighting"
    )
    assert weighted_best <= best_costs["no weighting"] + 0.05
    # the ranking table covers every single device plus the EQC variants
    ranking = result.ranking_rows()
    assert len(ranking) == len(result.runs) + len(baseline.singles) + 1
