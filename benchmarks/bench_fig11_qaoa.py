"""Figure 11 — QAOA MaxCut: eight single devices vs unweighted EQC."""

from repro.analysis.reporting import format_series
from repro.experiments.fig11_qaoa import QAOAExperimentConfig, render_fig11, run_fig11_qaoa


def test_fig11_qaoa_maxcut(benchmark, bench_scale):
    config = QAOAExperimentConfig(
        iterations=bench_scale["qaoa_iterations"],
        shots=bench_scale["shots"],
        eqc_runs=bench_scale["eqc_runs"],
        seed=11,
    )
    result = benchmark.pedantic(run_fig11_qaoa, args=(config,), rounds=1, iterations=1)

    print("\n=== Figure 11: 4-node MaxCut QAOA, single devices vs unweighted EQC ===")
    print(render_fig11(result))
    eqc = result.eqc_history
    problem = result.problem
    print(
        format_series(
            "EQC cost",
            eqc.epochs.tolist(),
            [problem.normalized_cost(v) for v in eqc.losses],
        )
    )
    for name, history in result.singles.items():
        print(
            format_series(
                f"{name} cost",
                history.epochs.tolist(),
                [problem.normalized_cost(v) for v in history.losses],
            )
        )

    # EQC's iteration throughput dwarfs the slowest machine and beats the fastest
    rates = {name: h.epochs_per_hour() for name, h in result.singles.items()}
    finished = {name: rate for name, rate in rates.items() if len(result.singles[name]) > 0}
    eqc_rate = eqc.epochs_per_hour()
    assert eqc_rate > max(finished.values())
    assert eqc_rate > 20.0 * min(finished.values())

    # every system improves on the initial cost, and costs live in [-1, 0]
    for history in [eqc, *result.singles.values()]:
        final_cost = problem.normalized_cost(history.final_loss(5))
        assert -1.0 <= final_cost <= 0.0

    # the unweighted EQC improves on its starting point and reaches a
    # reasonable cut quality for p=1 QAOA under noise
    initial_ratio = problem.approximation_ratio(problem.energy(
        problem.random_initial_parameters(seed=config.seed)))
    final_ratio = problem.approximation_ratio(eqc.final_loss(5))
    assert final_ratio > initial_ratio
    assert final_ratio > 0.45
