"""Ablation — throughput and error as the ensemble grows from 1 to 10 devices.

Not a paper figure: quantifies how much of EQC's speedup comes from each
additional backend, and that accuracy does not degrade as noisier devices
join (the mixture dampens their bias).
"""

from repro.analysis.reporting import format_table
from repro.experiments.ablations import run_ensemble_size_sweep


def test_ablation_ensemble_size(benchmark, bench_scale):
    sizes = (1, 2, 4, 6, 8, 10)
    rows = benchmark.pedantic(
        run_ensemble_size_sweep,
        kwargs={"sizes": sizes, "epochs": 30, "shots": bench_scale["shots"] // 2, "seed": 7},
        rounds=1,
        iterations=1,
    )
    print("\n=== Ablation: ensemble size sweep ===")
    print(format_table(rows))

    assert [row["ensemble_size"] for row in rows] == list(sizes)
    throughput = {row["ensemble_size"]: row["epochs_per_hour"] for row in rows}
    # adding devices increases throughput substantially end to end
    assert throughput[10] > 3.0 * throughput[1]
    # and is monotone-ish: the full fleet beats every prefix smaller than half
    assert throughput[10] > throughput[2]
    assert throughput[8] > throughput[1]
