"""Figure 6 — the 4-qubit Heisenberg VQE: single devices vs EQC vs ideal.

Regenerates both panels: the energy-vs-epoch traces (printed as a table of
converged energies / errors / convergence epochs) and the epochs-per-hour
comparison.  The assertions encode the paper's qualitative claims:

* EQC trains an order of magnitude faster than the typical single device and
  is faster than every device in the ensemble;
* slow devices (Manhattan, Santiago) never finish and are terminated;
* EQC's converged error lands near the best single devices and far below the
  worst ones.
"""

import numpy as np

from repro.analysis.reporting import format_series
from repro.experiments.fig6_vqe import VQEExperimentConfig, render_fig6, run_fig6_vqe


def test_fig6_heisenberg_vqe(benchmark, bench_scale):
    config = VQEExperimentConfig(
        epochs=bench_scale["vqe_epochs"],
        shots=bench_scale["shots"],
        eqc_runs=bench_scale["eqc_runs"],
        seed=7,
    )
    result = benchmark.pedantic(run_fig6_vqe, args=(config,), rounds=1, iterations=1)

    print("\n=== Figure 6: 4-qubit Heisenberg VQE ===")
    print(render_fig6(result))
    epochs, mean, std = result.eqc_mean_curve()
    print(format_series("EQC mean energy", epochs.tolist(), mean.tolist()))
    print(format_series("EQC std", epochs.tolist(), std.tolist()))
    print(format_series("ideal energy", result.ideal.epochs.tolist(), result.ideal.losses.tolist()))
    for name, history in result.singles.items():
        print(format_series(f"{name} energy", history.epochs.tolist(), history.losses.tolist()))

    reference = result.ideal_solution_energy
    eqc = result.eqc_mean_history

    # --- throughput claims -------------------------------------------------
    single_rates = {name: h.epochs_per_hour() for name, h in result.singles.items()}
    eqc_rate = eqc.epochs_per_hour()
    assert eqc_rate > max(single_rates.values()), "EQC must out-run every single device"
    assert eqc_rate > 5.0 * np.median(list(single_rates.values())), (
        "EQC should be several times faster than the typical device"
    )

    # --- termination claims ------------------------------------------------
    assert result.singles["Manhattan"].terminated_early
    assert result.singles["Santiago"].terminated_early

    # --- error claims ------------------------------------------------------
    eqc_error = eqc.error_vs(reference)
    completed = {
        name: h.error_vs(reference)
        for name, h in result.singles.items()
        if not h.terminated_early
    }
    assert eqc_error < 0.05, "EQC converges close to the ideal solution"
    assert eqc_error < max(completed.values()), (
        "EQC must beat the worst completed single device"
    )
    # EQC lands within striking distance of the best single device
    assert eqc_error < min(completed.values()) + 0.05
