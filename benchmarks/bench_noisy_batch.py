"""Noisy-path benchmark — vectorized device batches vs sequential execution.

Three workloads, recorded in ``BENCH_noisy.json`` at the repository root so
the performance trajectory of the noisy execution layer is tracked across
PRs:

* **ensemble gradient batch** — the EQC hot path: a 16-circuit (8-parameter
  forward/backward) parameter-shift batch through ``NoisyBackend`` on one
  simulated device, timed against the retained sequential reference
  (per-circuit :meth:`QPU.execute` with the identical in-batch device
  clock).  Counts must be **bit-exact** between the two paths.
* **zero-rebind sweep** — the same batch submitted as a raw shift matrix via
  ``NoisyBackend.run_sweep`` (no circuit is ever bound), against binding the
  circuits and submitting them through ``run``.
* **trajectory average** — 128-trajectory ``average_probabilities`` through
  the batched ``(trajectories, 2**n)`` engine vs the sequential
  one-trajectory-at-a-time reference, cross-checked against the exact
  density-matrix evolution.

Floors (enforced on every run, including ``--smoke`` in CI): the batched
device path must hold >=3x on the ensemble gradient batch with <=1e-10
probability parity and bit-exact seeded counts, and the batched trajectory
engine must hold >=10x on the 128-trajectory average.
"""

from __future__ import annotations

import time

import numpy as np

from _common import bench_json_path, bench_main, write_bench_json

from repro.backends.noisy import NoisyBackend
from repro.circuit import ghz_state, hardware_efficient_ansatz
from repro.devices.catalog import build_qpu
from repro.devices.qpu import CircuitFootprint, job_slot_circuit_seconds
from repro.simulator.mixing import noisy_probabilities, noisy_probabilities_batch
from repro.simulator.trajectory import (
    MonteCarloSimulator,
    TrajectoryNoiseSpec,
    density_matrix_probabilities,
)
from repro.vqa.gradient import shifted_parameter_vectors, shifted_theta_matrix

NUM_QUBITS = 5
NUM_PARAMETERS = 8
SHOTS = 512
DEVICE = "Belem"
BATCH_START_TIME = 1000.0
TRAJECTORIES = 128
TRAJECTORY_QUBITS = 4
REPEATS = 15
SMOKE_REPEATS = 5
BENCH_PATH = bench_json_path("noisy")

#: Pinned CI floors — a batched noisy path slower than this is a regression.
MIN_BATCHED_OVER_SEQUENTIAL = 3.0
MIN_TRAJECTORY_SPEEDUP = 10.0
MAX_PROBABILITY_DELTA = 1e-10


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def build_gradient_batch():
    """The 16 bound circuits of an 8-parameter shift sweep, plus template."""
    template = hardware_efficient_ansatz(NUM_QUBITS).measure_all()
    rng = np.random.default_rng(20260729)
    theta = rng.uniform(-np.pi, np.pi, len(template.ordered_parameters()))
    circuits = []
    for index in range(NUM_PARAMETERS):
        pair = shifted_parameter_vectors(theta, index)
        circuits.append(template.assign_by_order(pair.forward))
        circuits.append(template.assign_by_order(pair.backward))
    matrix = shifted_theta_matrix(theta, list(range(NUM_PARAMETERS)))
    return template, circuits, matrix


def run_gradient_batch(repeats: int) -> dict:
    """16-circuit parameter-shift batch through NoisyBackend vs sequential."""
    template, circuits, _ = build_gradient_batch()
    qpu = build_qpu(DEVICE)
    backend = NoisyBackend(qpu)
    footprint = CircuitFootprint.from_circuit(circuits[0])

    def sequential():
        rng = np.random.default_rng(0)
        elapsed = 0.0
        results = []
        for circuit in circuits:
            result = qpu.execute(
                circuit, footprint, SHOTS, now=BATCH_START_TIME + elapsed, rng=rng
            )
            results.append(result)
            elapsed += job_slot_circuit_seconds(result.duration_seconds)
        return results

    def batched():
        return backend.run(
            circuits,
            shots=SHOTS,
            footprint=footprint,
            now=BATCH_START_TIME,
            rng=np.random.default_rng(0),
        )

    # Parity: the batched pipeline's distributions against the sequential
    # per-circuit path, on the specs of each circuit's clock position.
    _, _, specs = qpu.noise_timeline(len(circuits), footprint, BATCH_START_TIME)
    batched_probs = noisy_probabilities_batch(circuits, specs)
    max_delta = max(
        float(np.max(np.abs(batch_row - noisy_probabilities(circuit, spec))))
        for circuit, spec, batch_row in zip(circuits, specs, batched_probs)
    )

    # Seeded counts must be bit-exact between the two paths.
    sequential_results = sequential()
    batched_results = batched()
    counts_bit_exact = all(
        dict(a.counts) == dict(b.counts)
        for a, b in zip(batched_results, sequential_results)
    )

    sequential_seconds = _best_of(sequential, repeats)
    batched_seconds = _best_of(batched, repeats)
    return {
        "config": {
            "device": DEVICE,
            "num_qubits": NUM_QUBITS,
            "num_parameters": NUM_PARAMETERS,
            "batch_size": len(circuits),
            "shots": SHOTS,
            "repeats": repeats,
        },
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "speedup_batched_vs_sequential": sequential_seconds / batched_seconds,
        "max_probability_delta": max_delta,
        "counts_bit_exact": counts_bit_exact,
    }


def run_sweep_batch(repeats: int) -> dict:
    """Zero-rebind run_sweep vs bind-then-run on the same shift matrix."""
    template, _, matrix = build_gradient_batch()
    backend = NoisyBackend(build_qpu(DEVICE))
    footprint = CircuitFootprint.from_circuit(template)

    def bind_and_run():
        bound = [template.assign_by_order(row) for row in matrix]
        return backend.run(
            bound,
            shots=SHOTS,
            footprint=footprint,
            now=BATCH_START_TIME,
            rng=np.random.default_rng(0),
        )

    def sweep():
        return backend.run_sweep(
            [template],
            matrix,
            shots=SHOTS,
            footprint=footprint,
            now=BATCH_START_TIME,
            rng=np.random.default_rng(0),
        )

    swept = sweep()
    bound = bind_and_run()
    counts_bit_exact = all(
        dict(a.counts) == dict(b.counts) for a, b in zip(swept, bound)
    )

    bind_seconds = _best_of(bind_and_run, repeats)
    sweep_seconds = _best_of(sweep, repeats)
    return {
        "config": {
            "device": DEVICE,
            "sweep_points": int(matrix.shape[0]),
            "shots": SHOTS,
            "repeats": repeats,
        },
        "bind_and_run_seconds": bind_seconds,
        "run_sweep_seconds": sweep_seconds,
        "speedup_sweep_vs_bind": bind_seconds / sweep_seconds,
        "counts_bit_exact": counts_bit_exact,
    }


def run_trajectory_average(repeats: int) -> dict:
    """128-trajectory average_probabilities: batched engine vs sequential."""
    spec = TrajectoryNoiseSpec(single_qubit_error=0.01, two_qubit_error=0.05)
    circuit = ghz_state(TRAJECTORY_QUBITS)
    simulator = MonteCarloSimulator(spec, seed=7)

    sequential_seconds = _best_of(
        lambda: simulator.average_probabilities_sequential(
            circuit, trajectories=TRAJECTORIES
        ),
        max(2, repeats // 3),
    )
    batched_seconds = _best_of(
        lambda: simulator.average_probabilities(circuit, trajectories=TRAJECTORIES),
        repeats,
    )

    # Cross-check both engines against the exact density-matrix evolution;
    # 2000 batched trajectories are cheap enough to pin the agreement.
    exact = density_matrix_probabilities(circuit, spec)
    averaged = simulator.average_probabilities(circuit, trajectories=2000)
    max_delta_exact = float(np.max(np.abs(averaged - exact)))

    return {
        "config": {
            "num_qubits": TRAJECTORY_QUBITS,
            "trajectories": TRAJECTORIES,
            "repeats": repeats,
        },
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "speedup_batched_vs_sequential": sequential_seconds / batched_seconds,
        "max_delta_vs_density_matrix": max_delta_exact,
    }


def run_noisy_benchmark(repeats: int = REPEATS) -> dict:
    return {
        "benchmark": "noisy_batch",
        "ensemble_gradient_batch": run_gradient_batch(repeats),
        "zero_rebind_sweep": run_sweep_batch(repeats),
        "trajectory_average": run_trajectory_average(repeats),
    }


def check_and_record(result: dict) -> None:
    """Persist the result and enforce the acceptance criteria.

    Shared by the pytest entry point and the CLI so CI fails loudly on a
    parity break or a speedup regression no matter how it runs this file.
    """
    write_bench_json(BENCH_PATH, result)
    gradient = result["ensemble_gradient_batch"]
    sweep = result["zero_rebind_sweep"]
    trajectory = result["trajectory_average"]

    assert gradient["max_probability_delta"] <= MAX_PROBABILITY_DELTA, (
        f"noisy batch parity broken: {gradient['max_probability_delta']:.3e}"
    )
    assert gradient["counts_bit_exact"], "batched counts diverged from sequential"
    assert sweep["counts_bit_exact"], "run_sweep counts diverged from bound run"
    assert gradient["speedup_batched_vs_sequential"] >= MIN_BATCHED_OVER_SEQUENTIAL, (
        "batched noisy path regressed below "
        f"{MIN_BATCHED_OVER_SEQUENTIAL}x over sequential: "
        f"{gradient['speedup_batched_vs_sequential']:.2f}x"
    )
    assert trajectory["speedup_batched_vs_sequential"] >= MIN_TRAJECTORY_SPEEDUP, (
        "batched trajectory engine regressed below "
        f"{MIN_TRAJECTORY_SPEEDUP}x over sequential: "
        f"{trajectory['speedup_batched_vs_sequential']:.2f}x"
    )
    assert trajectory["max_delta_vs_density_matrix"] < 0.05, (
        "trajectory engine disagrees with density-matrix evolution: "
        f"{trajectory['max_delta_vs_density_matrix']:.3f}"
    )


def _report(result: dict) -> None:
    gradient = result["ensemble_gradient_batch"]
    sweep = result["zero_rebind_sweep"]
    trajectory = result["trajectory_average"]
    print("\n=== Noisy: 16-circuit ensemble gradient batch (NoisyBackend) ===")
    print(
        f"sequential {gradient['sequential_seconds'] * 1e3:.2f} ms | "
        f"batched {gradient['batched_seconds'] * 1e3:.2f} ms | "
        f"speedup {gradient['speedup_batched_vs_sequential']:.1f}x | "
        f"max |dp| {gradient['max_probability_delta']:.1e} | "
        f"counts bit-exact: {gradient['counts_bit_exact']}"
    )
    print("=== Noisy: zero-rebind device sweep ===")
    print(
        f"bind+run {sweep['bind_and_run_seconds'] * 1e3:.2f} ms | "
        f"run_sweep {sweep['run_sweep_seconds'] * 1e3:.2f} ms | "
        f"speedup {sweep['speedup_sweep_vs_bind']:.1f}x | "
        f"counts bit-exact: {sweep['counts_bit_exact']}"
    )
    print("=== Noisy: 128-trajectory average_probabilities ===")
    print(
        f"sequential {trajectory['sequential_seconds'] * 1e3:.1f} ms | "
        f"batched {trajectory['batched_seconds'] * 1e3:.1f} ms | "
        f"speedup {trajectory['speedup_batched_vs_sequential']:.1f}x | "
        f"max delta vs density matrix {trajectory['max_delta_vs_density_matrix']:.4f}"
    )


def test_noisy_batch_speedup():
    result = run_noisy_benchmark()
    _report(result)
    check_and_record(result)


if __name__ == "__main__":
    bench_main(
        lambda smoke: run_noisy_benchmark(SMOKE_REPEATS if smoke else REPEATS),
        check_and_record,
        report=_report,
    )
