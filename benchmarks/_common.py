"""Shared CLI and JSON plumbing for the benchmark scripts.

Every ``benchmarks/bench_*.py`` follows the same contract: run (optionally
reduced by ``--smoke``), print a human-readable report plus the raw JSON
result, write ``BENCH_<name>.json`` at the repository root, and assert its
acceptance floors.  This module is the single home of that boilerplate so
the individual benchmarks only contain what is specific to them.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Callable

__all__ = ["REPO_ROOT", "bench_json_path", "smoke_requested", "write_bench_json", "bench_main"]

REPO_ROOT = Path(__file__).resolve().parents[1]


def bench_json_path(name: str) -> Path:
    """The canonical ``BENCH_<name>.json`` location at the repository root."""
    return REPO_ROOT / f"BENCH_{name}.json"


def smoke_requested(argv: list[str] | None = None) -> bool:
    """True when the CLI asked for the reduced-but-complete CI run."""
    args = sys.argv[1:] if argv is None else list(argv)
    return "--smoke" in args


def write_bench_json(path, result: dict) -> None:
    """Persist one benchmark result (pretty JSON, trailing newline).

    The write is atomic — serialized to a sibling temp file, fsynced, then
    ``os.replace``d over the target — so a benchmark killed mid-write (or two
    racing CI jobs) can never leave a truncated ``BENCH_*.json`` behind.
    """
    target = Path(path)
    payload = json.dumps(result, indent=2) + "\n"
    fd, tmp_name = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".tmp", dir=target.parent
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def bench_main(
    run: Callable[[bool], dict],
    check_and_record: Callable[[dict], None],
    report: Callable[[dict], None] | None = None,
    argv: list[str] | None = None,
) -> dict:
    """The shared ``__main__`` body of every benchmark script.

    ``run`` receives the smoke flag and returns the result dict;
    ``check_and_record`` persists it and asserts the acceptance floors.
    """
    result = run(smoke_requested(argv))
    if report is not None:
        report(result)
    print(json.dumps(result, indent=2))
    check_and_record(result)
    return result
