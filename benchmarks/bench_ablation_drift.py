"""Ablation — live PCorrect refresh vs weights frozen at ensemble formation.

Not a paper figure: this probes the "real-time adaptive" claim of the
weighting system by disabling the per-job recomputation of PCorrect.
"""

from repro.analysis.reporting import format_table
from repro.experiments.ablations import run_weight_refresh_ablation


def test_ablation_weight_refresh(benchmark, bench_scale):
    rows = benchmark.pedantic(
        run_weight_refresh_ablation,
        kwargs={
            "epochs": 40,
            "device_names": ("x2", "Belem", "Quito", "Bogota", "Casablanca", "Toronto"),
            "shots": bench_scale["shots"] // 2,
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    print("\n=== Ablation: PCorrect refresh cadence ===")
    print(format_table(rows))

    assert len(rows) == 2
    for row in rows:
        # both configurations make solid progress from the +8 starting energy
        assert row["final_energy"] < 0.0
