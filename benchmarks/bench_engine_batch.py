"""Engine benchmark — batched vs sequential statevector execution.

Measures the wall time of a 5-qubit, 8-parameter parameter-shift sweep
(8 parameters x forward/backward = 16 structurally identical circuits)
through the looped reference simulator and through the vectorized batch
engine, and records the result in ``BENCH_engine.json`` at the repository
root so the performance trajectory of the execution layer is tracked
across PRs.  The batched engine must hold at least a 3x advantage.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.backends import BatchedStatevectorBackend, StatevectorBackend
from repro.circuit import hardware_efficient_ansatz
from repro.vqa.gradient import shifted_parameter_vectors

NUM_QUBITS = 5
NUM_PARAMETERS = 8
REPEATS = 15
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def build_sweep_batch() -> list:
    """The 16 bound circuits of an 8-parameter shift sweep."""
    template = hardware_efficient_ansatz(NUM_QUBITS)
    rng = np.random.default_rng(20260729)
    theta = rng.uniform(-np.pi, np.pi, len(template.ordered_parameters()))
    circuits = []
    for index in range(NUM_PARAMETERS):
        pair = shifted_parameter_vectors(theta, index)
        circuits.append(template.assign_by_order(pair.forward))
        circuits.append(template.assign_by_order(pair.backward))
    return circuits


def time_backend(backend, circuits, repeats: int = REPEATS) -> float:
    """Best-of-N wall time of one full-batch probability computation."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        backend.probabilities(circuits)
        best = min(best, time.perf_counter() - start)
    return best


def run_engine_benchmark() -> dict:
    circuits = build_sweep_batch()
    sequential = StatevectorBackend()
    batched = BatchedStatevectorBackend()

    # parity guard: a speedup over wrong answers is worthless
    max_delta = max(
        float(np.max(np.abs(b - s)))
        for b, s in zip(batched.probabilities(circuits), sequential.probabilities(circuits))
    )

    sequential_seconds = time_backend(sequential, circuits)
    batched_seconds = time_backend(batched, circuits)
    return {
        "benchmark": "engine_batch",
        "config": {
            "num_qubits": NUM_QUBITS,
            "num_parameters": NUM_PARAMETERS,
            "batch_size": len(circuits),
            "repeats": REPEATS,
        },
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "speedup": sequential_seconds / batched_seconds,
        "max_probability_delta": max_delta,
    }


def check_and_record(result: dict) -> None:
    """Persist the result and enforce the acceptance criteria.

    Shared by the pytest entry point and the CLI so CI fails loudly on a
    parity break or a speedup regression no matter how it runs this file.
    """
    BENCH_PATH.write_text(json.dumps(result, indent=2) + "\n")
    assert result["max_probability_delta"] <= 1e-10, (
        f"batched/sequential parity broken: {result['max_probability_delta']:.3e}"
    )
    assert result["speedup"] >= 3.0, (
        f"batched engine regressed below 3x: {result['speedup']:.2f}x"
    )


def test_engine_batch_speedup():
    result = run_engine_benchmark()
    print("\n=== Engine: batched vs sequential (16-circuit sweep) ===")
    print(
        f"sequential {result['sequential_seconds'] * 1e3:.2f} ms | "
        f"batched {result['batched_seconds'] * 1e3:.2f} ms | "
        f"speedup {result['speedup']:.1f}x | "
        f"max |dp| {result['max_probability_delta']:.1e}"
    )
    check_and_record(result)


if __name__ == "__main__":
    result = run_engine_benchmark()
    print(json.dumps(result, indent=2))
    check_and_record(result)
