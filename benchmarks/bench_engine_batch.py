"""Engine benchmark — compiled programs vs the v1 batch engine vs sequential.

Two workloads, recorded in ``BENCH_engine.json`` at the repository root so
the performance trajectory of the execution layer is tracked across PRs:

* **micro** — the original 5-qubit, 8-parameter hardware-efficient sweep
  (16 structurally identical circuits), timed through the looped reference
  simulator, the v1 stacked-matmul batch engine, and the compiled engine.
* **macro** — a depth-heavy 6-qubit, 4-layer QAOA parameter-shift sweep.
  The v1 path pays per-point circuit binding plus per-gate stacked matmuls;
  the compiled path lowers the ansatz once and executes the raw ``(2·P, P)``
  shift matrix with fusion, diagonal phase fast paths, and ping-pong
  buffers.

Floors (enforced on every run, including ``--smoke`` in CI): the compiled
engine must hold ≥3x over the v1 batch engine on the macro sweep and ≥3x
over the sequential reference on the micro sweep, with ≤1e-10 probability
parity everywhere.
"""

from __future__ import annotations

import time

import numpy as np

from _common import bench_json_path, bench_main, write_bench_json

from repro.backends.batched import (
    batched_probabilities,
    simulate_statevector_batch,
    simulate_statevector_batch_v1,
    sweep_probabilities,
)
from repro.circuit import hardware_efficient_ansatz, qaoa_maxcut_ansatz
from repro.engine import shared_program_cache
from repro.simulator.statevector import simulate_statevector
from repro.vqa.gradient import shifted_parameter_vectors, shifted_theta_matrix

NUM_QUBITS = 5
NUM_PARAMETERS = 8
REPEATS = 15
SMOKE_REPEATS = 3
MACRO_QUBITS = 6
MACRO_LAYERS = 4
BENCH_PATH = bench_json_path("engine")

#: Pinned CI floors — a compiled engine slower than this is a regression.
MIN_COMPILED_OVER_V1 = 3.0
MIN_COMPILED_OVER_SEQUENTIAL = 3.0
MAX_PROBABILITY_DELTA = 1e-10


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _sequential_probabilities(circuits) -> list[np.ndarray]:
    return [
        simulate_statevector(c).probabilities(list(range(c.num_qubits)))
        for c in circuits
    ]


def build_micro_sweep() -> list:
    """The 16 bound circuits of an 8-parameter shift sweep (PR-1 workload)."""
    template = hardware_efficient_ansatz(NUM_QUBITS)
    rng = np.random.default_rng(20260729)
    theta = rng.uniform(-np.pi, np.pi, len(template.ordered_parameters()))
    circuits = []
    for index in range(NUM_PARAMETERS):
        pair = shifted_parameter_vectors(theta, index)
        circuits.append(template.assign_by_order(pair.forward))
        circuits.append(template.assign_by_order(pair.backward))
    return circuits


def run_micro(repeats: int) -> dict:
    circuits = build_micro_sweep()
    n = circuits[0].num_qubits

    def v1():
        return batched_probabilities(
            simulate_statevector_batch_v1(circuits), range(n), n
        )

    def v2():
        return batched_probabilities(simulate_statevector_batch(circuits), range(n), n)

    reference = _sequential_probabilities(circuits)
    max_delta = max(
        float(np.max(np.abs(np.asarray(v2()) - np.asarray(reference)))),
        float(np.max(np.abs(v1() - np.asarray(reference)))),
    )

    sequential_seconds = _best_of(lambda: _sequential_probabilities(circuits), repeats)
    v1_seconds = _best_of(v1, repeats)
    v2_seconds = _best_of(v2, repeats)
    return {
        "config": {
            "num_qubits": NUM_QUBITS,
            "num_parameters": NUM_PARAMETERS,
            "batch_size": len(circuits),
            "repeats": repeats,
        },
        "sequential_seconds": sequential_seconds,
        "batched_v1_seconds": v1_seconds,
        "compiled_seconds": v2_seconds,
        "speedup_v1_vs_sequential": sequential_seconds / v1_seconds,
        "speedup_compiled_vs_sequential": sequential_seconds / v2_seconds,
        "speedup_compiled_vs_v1": v1_seconds / v2_seconds,
        "max_probability_delta": max_delta,
    }


def run_macro(repeats: int) -> dict:
    """Depth-heavy QAOA parameter-shift macro-benchmark (end-to-end sweep)."""
    edges = [
        (i, j)
        for i in range(MACRO_QUBITS)
        for j in range(i + 1, MACRO_QUBITS)
        if (i + j) % 2 == 1 or j == i + 1
    ]
    template = qaoa_maxcut_ansatz(MACRO_QUBITS, edges, num_layers=MACRO_LAYERS)
    num_parameters = len(template.ordered_parameters())
    rng = np.random.default_rng(42)
    theta = shifted_theta_matrix(rng.uniform(-np.pi, np.pi, num_parameters))

    def v1():
        # What a PR-1 sweep paid: bind every point, then stacked matmuls.
        bound = [template.assign_by_order(row) for row in theta]
        return batched_probabilities(
            simulate_statevector_batch_v1(bound), range(MACRO_QUBITS), MACRO_QUBITS
        )

    def v2():
        # Zero-rebind compiled execution straight off the shift matrix.
        return sweep_probabilities([template], theta)[0]

    shared_program_cache().get_or_compile(template)  # compile outside timing
    bound = [template.assign_by_order(row) for row in theta]
    reference = np.asarray(_sequential_probabilities(bound))
    max_delta = max(
        float(np.max(np.abs(v2() - reference))),
        float(np.max(np.abs(v1() - reference))),
    )

    sequential_seconds = _best_of(
        lambda: _sequential_probabilities(bound), max(2, repeats // 3)
    )
    v1_seconds = _best_of(v1, repeats)
    v2_seconds = _best_of(v2, repeats)
    return {
        "config": {
            "num_qubits": MACRO_QUBITS,
            "num_layers": MACRO_LAYERS,
            "num_edges": len(edges),
            "num_parameters": num_parameters,
            "sweep_points": int(theta.shape[0]),
            "gates": len(template),
            "repeats": repeats,
        },
        "sequential_seconds": sequential_seconds,
        "bind_plus_v1_seconds": v1_seconds,
        "compiled_seconds": v2_seconds,
        "speedup_compiled_vs_v1": v1_seconds / v2_seconds,
        "speedup_compiled_vs_sequential": sequential_seconds / v2_seconds,
        "max_probability_delta": max_delta,
    }


def run_engine_benchmark(repeats: int = REPEATS) -> dict:
    return {
        "benchmark": "engine_batch",
        "micro_hea_sweep": run_micro(repeats),
        "macro_qaoa_sweep": run_macro(repeats),
    }


def check_and_record(result: dict) -> None:
    """Persist the result and enforce the acceptance criteria.

    Shared by the pytest entry point and the CLI so CI fails loudly on a
    parity break or a speedup regression no matter how it runs this file.
    """
    write_bench_json(BENCH_PATH, result)
    micro = result["micro_hea_sweep"]
    macro = result["macro_qaoa_sweep"]
    for section in (micro, macro):
        assert section["max_probability_delta"] <= MAX_PROBABILITY_DELTA, (
            f"engine parity broken: {section['max_probability_delta']:.3e}"
        )
    assert micro["speedup_compiled_vs_sequential"] >= MIN_COMPILED_OVER_SEQUENTIAL, (
        "compiled engine regressed below "
        f"{MIN_COMPILED_OVER_SEQUENTIAL}x over sequential: "
        f"{micro['speedup_compiled_vs_sequential']:.2f}x"
    )
    assert macro["speedup_compiled_vs_v1"] >= MIN_COMPILED_OVER_V1, (
        f"compiled engine regressed below {MIN_COMPILED_OVER_V1}x over the "
        f"v1 batch engine: {macro['speedup_compiled_vs_v1']:.2f}x"
    )


def _report(result: dict) -> None:
    micro = result["micro_hea_sweep"]
    macro = result["macro_qaoa_sweep"]
    print("\n=== Engine micro: 16-circuit HEA sweep ===")
    print(
        f"sequential {micro['sequential_seconds'] * 1e3:.2f} ms | "
        f"v1 {micro['batched_v1_seconds'] * 1e3:.2f} ms | "
        f"compiled {micro['compiled_seconds'] * 1e3:.2f} ms | "
        f"compiled/sequential {micro['speedup_compiled_vs_sequential']:.1f}x | "
        f"max |dp| {micro['max_probability_delta']:.1e}"
    )
    print("=== Engine macro: depth-heavy QAOA parameter-shift sweep ===")
    print(
        f"sequential {macro['sequential_seconds'] * 1e3:.2f} ms | "
        f"bind+v1 {macro['bind_plus_v1_seconds'] * 1e3:.2f} ms | "
        f"compiled {macro['compiled_seconds'] * 1e3:.2f} ms | "
        f"compiled/v1 {macro['speedup_compiled_vs_v1']:.1f}x | "
        f"compiled/sequential {macro['speedup_compiled_vs_sequential']:.1f}x | "
        f"max |dp| {macro['max_probability_delta']:.1e}"
    )


def test_engine_batch_speedup():
    result = run_engine_benchmark()
    _report(result)
    check_and_record(result)


if __name__ == "__main__":
    bench_main(
        lambda smoke: run_engine_benchmark(SMOKE_REPEATS if smoke else REPEATS),
        check_and_record,
        report=_report,
    )
