"""Figure 5 — QPU weights (bounded to [0.5, 1.5]) tracked over 40 hours."""

from repro.core.weighting import WeightBounds
from repro.experiments.fig5_weights import fig5_weight_trace, render_fig5


def test_fig5_weight_trace(benchmark):
    result = benchmark.pedantic(
        fig5_weight_trace,
        kwargs={"duration_hours": 40.0, "step_hours": 1.0, "bounds": WeightBounds(0.5, 1.5)},
        rounds=1,
        iterations=1,
    )
    print("\n=== Figure 5: QPU weight traces over 40 h (bounds [0.5, 1.5]) ===")
    print(render_fig5(result))

    assert len(result.times_hours) == 41
    for device in result.device_names:
        low, high = result.weight_range(device)
        assert 0.5 - 1e-9 <= low <= high <= 1.5 + 1e-9
    # weights actually move over time (real-time adaptivity) ...
    varying = [
        device
        for device in result.device_names
        if result.weight_range(device)[1] - result.weight_range(device)[0] > 0.05
    ]
    assert len(varying) >= 3
    # ... and the device carrying the lowest average weight is one of the
    # noisier/volatile members, never one of the clean line/T-shape devices
    means = {device: result.mean_weight(device) for device in result.device_names}
    assert min(means, key=means.get) not in {"Bogota", "Manila", "Quito", "Belem"}
