"""Section V speedup statistics — EQC throughput vs every single device.

The paper's abstract summarizes the evaluation as an average 10.5x speedup
(at least 5.2x, up to 86x).  Absolute factors depend on the simulated queue
calibration; the assertions check the *shape*: a large average speedup, a
minimum speedup well above 1, and a maximum in the tens-to-hundreds against
the congested devices.
"""

from repro.experiments.fig6_vqe import VQEExperimentConfig, run_fig6_vqe
from repro.experiments.speedup import render_speedup, speedup_from_result


def test_speedup_summary(benchmark, bench_scale):
    config = VQEExperimentConfig(
        epochs=min(100, bench_scale["vqe_epochs"]),
        shots=bench_scale["shots"],
        single_devices=("x2", "Bogota", "Casablanca", "Toronto", "Santiago", "Manhattan"),
        eqc_runs=1,
        seed=23,
    )

    def run():
        result = run_fig6_vqe(config)
        return result, speedup_from_result(result)

    result, summary = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== Speedup summary (EQC vs single devices) ===")
    print(render_speedup(summary))
    print(summary.describe())

    assert summary.min_speedup > 1.5, "EQC must beat even the fastest single device"
    assert summary.average_speedup > 5.0
    assert summary.max_speedup > 20.0, (
        "the congested devices should show an order-of-magnitude-plus speedup"
    )
