"""Figure 4 — calculated vs observed 5-qubit GHZ error and its correlation.

The paper reports Pearson r = 0.784 (p = 1.3e-7) and a linear-fit R^2 of
0.605, with the analytic model underestimating the error of stale (12 h)
calibrations.  The benchmark regenerates the scatter on the simulated fleet
and checks that the correlation is strong but imperfect, and that staleness
degrades the prediction in the same direction.
"""

import numpy as np

from repro.experiments.fig4_ghz import fig4_ghz_validation, render_fig4


def test_fig4_ghz_validation(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig4_ghz_validation,
        kwargs={"shots": bench_scale["shots"], "repeats": 3},
        rounds=1,
        iterations=1,
    )
    print("\n=== Figure 4: calculated vs observed GHZ error ===")
    print(render_fig4(result))

    correlation = result.correlation
    # strong, statistically significant, but imperfect correlation
    assert correlation.pearson_r > 0.5
    assert correlation.p_value < 0.05
    assert correlation.r_squared < 0.999

    # the model underestimates the error of stale calibrations on average
    fresh = [p for p in result.points if p.calibration_age_hours < 1.0]
    stale = [p for p in result.points if p.calibration_age_hours >= 1.0]
    fresh_gap = np.mean([p.observed_error - p.calculated_error for p in fresh])
    stale_gap = np.mean([p.observed_error - p.calculated_error for p in stale])
    assert stale_gap > fresh_gap
