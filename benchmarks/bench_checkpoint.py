"""Durability benchmark — SIGKILL recovery, generation fallback, overhead.

Three durability workloads, recorded in ``BENCH_checkpoint.json`` at the
repository root so the crash-recovery guarantees are tracked across PRs:

* **kill recovery** — a checkpointed training run is launched as a real
  subprocess and SIGKILLed mid-epoch as soon as its first checkpoint
  generation lands.  Recovery (``repro.resume``) must finish the run with a
  history bitwise identical to a baseline that was never killed.
* **damaged-store recovery** — the killed run's store is then damaged the
  way real crashes damage it: a torn partial record is appended to the
  journal and the newest checkpoint generation is bit-flipped.  Recovery
  must fall back exactly one generation, tolerate the torn tail, and still
  reproduce the baseline bit for bit.
* **overhead** — training with ``checkpoint_every=1`` (journal appends +
  fsync + full-state checkpoint at every epoch boundary) must cost < 5% of
  the undurable run's wall time.  The asserted number is the directly
  attributed persist time (see :func:`run_overhead` for why differencing
  wall clocks cannot pin a ~2% effect on a shared host); the paired wall
  difference is recorded alongside it as an unasserted reference.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import statistics
import subprocess
import sys
import time

import numpy as np

from _common import REPO_ROOT, bench_json_path, bench_main, write_bench_json

from repro.core import EQCConfig, EQCEnsemble
from repro.core.objective import EnergyObjective
from repro.persist import RunDirectory, read_journal, resume
from repro.vqa.vqe import heisenberg_vqe_problem

DEVICES = ("x2", "Belem", "Bogota", "Quito")
#: Closer to the paper's 8192-shot scale than the other benches' 256: the
#: overhead floor compares fixed per-epoch durability cost (~1-2ms of JSON,
#: journal fsync, checkpoint fsync) against real epoch compute, and a toy
#: workload would measure timer noise instead of the contract.
SHOTS = 1024
SEED = 1
EPOCHS = 6
SMOKE_EPOCHS = 4
#: The overhead run is longer than the recovery runs: per-epoch durability
#: cost is ~1ms against ~50ms of epoch compute, so short runs would measure
#: scheduler/timer noise instead of the contract.
OVERHEAD_EPOCHS = 10
SMOKE_OVERHEAD_EPOCHS = 6
OVERHEAD_REPS = 3
#: The overhead workload uses a deeper ansatz than the recovery workloads:
#: two layers (32 parameters) is the realistic VQE depth, and its ~160ms
#: epochs dwarf the fixed ~2ms per-epoch durability cost the floor pins.
#: The recovery workloads stay at one layer — they assert bit-exactness,
#: where a faster epoch means a faster benchmark and nothing else.
OVERHEAD_LAYERS = 2
BENCH_PATH = bench_json_path("checkpoint")

#: Pinned CI floor: full-state checkpointing at every epoch boundary may
#: cost at most this fraction of the undurable run's wall time.
MAX_OVERHEAD_FRACTION = 0.05

KILL_POLL_SECONDS = 0.02
KILL_TIMEOUT_SECONDS = 300.0


def _make_objective(num_layers: int = 1):
    problem = heisenberg_vqe_problem(num_layers=num_layers)
    return EnergyObjective(problem.estimator)


def _make_config(**overrides):
    kwargs = dict(device_names=DEVICES, shots=SHOTS, seed=SEED)
    kwargs.update(overrides)
    return EQCConfig(**kwargs)


def _train_once(epochs: int, num_layers: int = 1, **config_kwargs):
    objective = _make_objective(num_layers)
    ensemble = EQCEnsemble(objective, _make_config(**config_kwargs))
    theta0 = np.zeros(ensemble.objective.num_parameters)
    return ensemble.train(theta0, num_epochs=epochs)


def _histories_bit_exact(reference, candidate) -> bool:
    if len(reference.records) != len(candidate.records):
        return False
    for expected, actual in zip(reference.records, candidate.records):
        if (
            actual.loss != expected.loss
            or not np.array_equal(actual.parameters, expected.parameters)
            or actual.sim_time_hours != expected.sim_time_hours
            or actual.weights != expected.weights
        ):
            return False
    return True


# ---------------------------------------------------------------------------
# subprocess child: the run that gets SIGKILLed
# ---------------------------------------------------------------------------

def _child_main(store_root: str, epochs: int) -> None:
    """Train with per-epoch checkpointing until the parent kills us."""
    _train_once(epochs, checkpoint_every=1, run_store=store_root)


def _launch_and_kill(store_root: str, epochs: int) -> dict:
    """Start a checkpointed training subprocess; SIGKILL it mid-epoch.

    The parent polls the run store until the first checkpoint generation
    lands, then kills the child without warning — the moment is mid-epoch
    by construction (the child checkpointed epoch N and is already partway
    through epoch N+1 when the poll observes the file).
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child", store_root, str(epochs)],
        env=env,
        cwd=os.path.dirname(os.path.abspath(__file__)),
    )
    run_path = os.path.join(store_root, "run-000001")
    checkpoints = os.path.join(run_path, "checkpoints")
    deadline = time.monotonic() + KILL_TIMEOUT_SECONDS
    try:
        while time.monotonic() < deadline:
            if child.poll() is not None:
                raise RuntimeError(
                    f"training child exited on its own (rc={child.returncode}) "
                    "before it could be killed"
                )
            if os.path.isdir(checkpoints) and any(
                name.endswith(".eqc") for name in os.listdir(checkpoints)
            ):
                break
            time.sleep(KILL_POLL_SECONDS)
        else:
            raise RuntimeError("no checkpoint appeared before the kill timeout")
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=60)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=60)
    return {"returncode": child.returncode, "run_path": run_path}


def run_kill_recovery(epochs: int, store_root: str) -> dict:
    """SIGKILL a real training process, recover, compare bitwise."""
    baseline = _train_once(epochs)
    kill = _launch_and_kill(store_root, epochs)
    run = RunDirectory(kill["run_path"])
    status_after_kill = run.status()
    checkpoints_after_kill = [p.name for p in run.checkpoint_paths()]
    journal_after_kill = read_journal(run.journal_path)

    # Damage a copy of the store first (workload 2 resumes it later) —
    # the clean recovery below marks the original complete.
    damaged = kill["run_path"] + "-damaged"
    shutil.copytree(kill["run_path"], damaged)

    recovered = resume(run, _make_objective())
    return {
        "child_returncode": kill["returncode"],
        "status_after_kill": status_after_kill,
        "checkpoints_after_kill": checkpoints_after_kill,
        "journal_records_after_kill": len(journal_after_kill.records),
        "journal_torn_tail_bytes": journal_after_kill.torn_tail_bytes,
        "histories_bit_exact": _histories_bit_exact(baseline, recovered),
        "status_after_recovery": run.status(),
        "_baseline": baseline,
        "_damaged_path": damaged,
    }


def run_damaged_store_recovery(baseline, damaged_path: str) -> dict:
    """Tear the journal tail, corrupt the newest generation, recover."""
    run = RunDirectory(damaged_path)
    with open(run.journal_path, "ab") as handle:
        handle.write(b'deadbeef {"update": 999999, "torn mid-')
    newest = run.checkpoint_paths()[-1]
    blob = bytearray(newest.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    newest.write_bytes(bytes(blob))

    from repro.persist import TrainingCheckpointer

    fallbacks_seen: list[int] = []
    original = TrainingCheckpointer._prepare_restore

    def counting(self):
        original(self)
        fallbacks_seen.append(len(self.fallbacks))

    TrainingCheckpointer._prepare_restore = counting
    try:
        recovered = resume(run, _make_objective())
    finally:
        TrainingCheckpointer._prepare_restore = original
    return {
        "corrupted_generation": newest.name,
        "generations_fallen_back": fallbacks_seen[0] if fallbacks_seen else 0,
        "histories_bit_exact": _histories_bit_exact(baseline, recovered),
    }


# ---------------------------------------------------------------------------
# overhead
# ---------------------------------------------------------------------------

def run_overhead(epochs: int, store_root: str, reps: int) -> dict:
    """Wall cost of checkpoint_every=1 vs durability disabled.

    The asserted number is the **directly attributed** durability cost: the
    wall time spent inside the checkpointer's hooks (journal appends,
    checkpoint assembly + write + retention), which every durable run
    accumulates in ``TrainingCheckpointer.persist_seconds`` and reports in
    ``history.metadata["persist"]``, divided by the plain run's wall time.
    Differencing two whole-run wall times cannot pin a ~2% effect on a
    shared host — CPU-frequency drift and scheduler stalls move short runs
    by ±6% between reps, so the difference measures the host, not the
    checkpointer.  The paired wall difference is still recorded
    (``wall_delta_fraction``) so a systematic indirect cost (GC pressure,
    writeback interference) would show up across PRs, but it carries the
    host noise and is not asserted.

    Measurement hygiene: one warm-up pair primes transpile/page caches;
    pairs alternate order (plain-first, durable-first, ...) so slow drift
    cancels out of the paired difference; minimums over reps feed the wall
    numbers because host noise is additive.
    """
    def timed(**config_kwargs):
        # Drain pending writeback *outside* the timed region: the recovery
        # workloads and earlier reps leave dirty pages, and the durable run's
        # journal fsync would otherwise queue behind that backlog — charging
        # unrelated I/O to the checkpoint path.
        os.sync()
        start = time.perf_counter()
        history = _train_once(epochs, num_layers=OVERHEAD_LAYERS, **config_kwargs)
        return time.perf_counter() - start, history

    def durable_kwargs(tag) -> dict:
        return {
            "checkpoint_every": 1,
            "run_store": os.path.join(store_root, f"rep-{tag}"),
        }

    timed()  # warm-up pair: transpile/program caches, page cache
    timed(**durable_kwargs("warmup"))
    plain_times: list[float] = []
    durable_times: list[float] = []
    persist_times: list[float] = []
    for i in range(reps):
        def one_durable():
            wall, history = timed(**durable_kwargs(i))
            durable_times.append(wall)
            persist_times.append(history.metadata["persist"]["persist_seconds"])
        if i % 2 == 0:
            plain_times.append(timed()[0])
            one_durable()
        else:
            one_durable()
            plain_times.append(timed()[0])
    plain = min(plain_times)
    durable = min(durable_times)
    persist = statistics.median(persist_times)
    return {
        "epochs": epochs,
        "reps": reps,
        "plain_seconds": plain,
        "durable_seconds": durable,
        "persist_seconds": persist,
        "overhead_fraction": persist / plain,
        "wall_delta_fraction": (durable - plain) / plain,
    }


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def run_checkpoint_benchmark(
    epochs: int = EPOCHS,
    overhead_epochs: int = OVERHEAD_EPOCHS,
    reps: int = OVERHEAD_REPS,
) -> dict:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="eqc-bench-ckpt-") as scratch:
        kill = run_kill_recovery(epochs, os.path.join(scratch, "kill"))
        baseline = kill.pop("_baseline")
        damaged_path = kill.pop("_damaged_path")
        damaged = run_damaged_store_recovery(baseline, damaged_path)
        overhead = run_overhead(
            overhead_epochs, os.path.join(scratch, "overhead"), reps
        )
    return {
        "benchmark": "checkpoint",
        "config": {
            "devices": list(DEVICES),
            "shots": SHOTS,
            "seed": SEED,
            "epochs": epochs,
            "checkpoint_every": 1,
        },
        "kill_recovery": kill,
        "damaged_store_recovery": damaged,
        "overhead": overhead,
    }


def check_and_record(result: dict) -> None:
    """Persist the result and enforce the acceptance criteria."""
    write_bench_json(BENCH_PATH, result)
    kill = result["kill_recovery"]
    damaged = result["damaged_store_recovery"]
    overhead = result["overhead"]

    assert kill["child_returncode"] == -signal.SIGKILL, (
        f"the training child was not SIGKILLed (rc={kill['child_returncode']})"
    )
    assert kill["status_after_kill"] == "running", (
        "the killed run's manifest should still say 'running'"
    )
    assert kill["checkpoints_after_kill"], "the child never wrote a checkpoint"
    assert kill["histories_bit_exact"], (
        "recovery from SIGKILL diverged from the never-killed baseline"
    )
    assert kill["status_after_recovery"] == "complete"
    assert damaged["generations_fallen_back"] == 1, (
        f"expected recovery to skip exactly the corrupted generation, "
        f"fell back {damaged['generations_fallen_back']}"
    )
    assert damaged["histories_bit_exact"], (
        "recovery from a damaged store diverged from the baseline"
    )
    assert overhead["overhead_fraction"] < MAX_OVERHEAD_FRACTION, (
        f"checkpoint_every=1 costs {overhead['overhead_fraction']:.1%} of the "
        f"plain run's wall time in persist hooks "
        f"(max {MAX_OVERHEAD_FRACTION:.0%})"
    )


def _report(result: dict) -> None:
    kill = result["kill_recovery"]
    damaged = result["damaged_store_recovery"]
    overhead = result["overhead"]
    print(
        f"\n=== Checkpoint: SIGKILL recovery "
        f"({len(DEVICES)} devices, checkpoint_every=1) ==="
    )
    print(
        f"child rc {kill['child_returncode']} | "
        f"checkpoints at kill {kill['checkpoints_after_kill']} | "
        f"journal records {kill['journal_records_after_kill']} "
        f"(torn tail {kill['journal_torn_tail_bytes']}B) | "
        f"bit-exact after resume: {kill['histories_bit_exact']}"
    )
    print("=== Checkpoint: damaged-store recovery ===")
    print(
        f"corrupted {damaged['corrupted_generation']} | "
        f"generations fallen back {damaged['generations_fallen_back']} | "
        f"bit-exact: {damaged['histories_bit_exact']}"
    )
    print("=== Checkpoint: overhead ===")
    print(
        f"plain {overhead['plain_seconds']:.3f}s | "
        f"durable {overhead['durable_seconds']:.3f}s | "
        f"persist {overhead['persist_seconds'] * 1000:.1f}ms | "
        f"attributed overhead {overhead['overhead_fraction']:+.2%} "
        f"(max {MAX_OVERHEAD_FRACTION:.0%}) | "
        f"wall delta {overhead['wall_delta_fraction']:+.2%}"
    )


def test_checkpoint_recovery():
    result = run_checkpoint_benchmark()
    _report(result)
    check_and_record(result)


if __name__ == "__main__":
    if len(sys.argv) >= 2 and sys.argv[1] == "--child":
        _child_main(sys.argv[2], int(sys.argv[3]))
        sys.exit(0)
    bench_main(
        lambda smoke: run_checkpoint_benchmark(
            SMOKE_EPOCHS if smoke else EPOCHS,
            overhead_epochs=SMOKE_OVERHEAD_EPOCHS if smoke else OVERHEAD_EPOCHS,
        ),
        check_and_record,
        report=_report,
    )
