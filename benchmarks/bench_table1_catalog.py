"""Table I — regenerate the device catalog table."""

from repro.experiments.table1 import render_table1, table1_rows


def test_table1_catalog(benchmark):
    rows = benchmark(table1_rows)
    assert len(rows) == 11
    print("\n=== Table I: IBMQ platforms used for evaluation ===")
    print(render_table1())
