"""Parallel-execution benchmark — multiprocess ensembles and tiled big-``n``.

Two workloads, recorded in ``BENCH_parallel.json`` at the repository root so
the performance trajectory of the true-parallel execution layer is tracked
across PRs:

* **parallel ensemble epochs** — the paper's 10-device VQE fleet trained for
  full epochs sequentially vs with ``parallel_workers=4`` worker processes.
  The histories must be **bit-exact** (same losses, parameters, simulated
  timeline, weights, and utilization) — workers replay each device's seeded
  streams exactly.  The speedup floor scales with the host: >=2x on >=4
  cores, >=1.1x on 2-3 cores, and on a single core the ratio is recorded
  but not enforced (``floor_enforced: false``) since there is no parallel
  hardware to win on.
* **tiled 20-qubit sweep** — a 6-point hardware-efficient sweep at 20 qubits
  through ``execute_program``.  The untiled complex128 pass needs three full
  ``(6, 2**20)`` stacks and must *exceed* the memory budget (three complex64
  stacks) that the tiled complex64 pass stays under, while agreeing with the
  untiled reference to <=1e-10 (tiled complex128) / <=1e-5 (complex64).
"""

from __future__ import annotations

import os
import time
import tracemalloc

import numpy as np

from _common import bench_json_path, bench_main, write_bench_json

from repro.circuit import hardware_efficient_ansatz
from repro.core import EQCConfig, EQCEnsemble
from repro.engine import compile_circuit, execute_program, parameter_plan, plan_slot_values
from repro.hamiltonian.expectation import EnergyEstimator
from repro.vqa.vqe import heisenberg_vqe_problem

FLEET_SHOTS = 8192
FLEET_SEED = 3
ANSATZ_LAYERS = 3
PARALLEL_WORKERS = 4
EPOCHS = 2
SMOKE_EPOCHS = 1
SWEEP_QUBITS = 20
SWEEP_POINTS = 6
SWEEP_TILE = 1
BENCH_PATH = bench_json_path("parallel")

#: Pinned CI floors.  The parallel floor scales with the host's core count —
#: multiprocess execution cannot beat sequential on a single core.
MIN_PARALLEL_SPEEDUP_4_CORES = 2.0
MIN_PARALLEL_SPEEDUP_2_CORES = 1.1
MAX_TILED_DELTA = 1e-10
MAX_COMPLEX64_DELTA = 1e-5


def _train_once(workers: int, epochs: int):
    problem = heisenberg_vqe_problem(num_layers=ANSATZ_LAYERS)
    estimator = EnergyEstimator(problem.ansatz, problem.hamiltonian)
    config = EQCConfig(
        shots=FLEET_SHOTS, seed=FLEET_SEED, parallel_workers=workers
    )
    ensemble = EQCEnsemble.for_estimator(estimator, config)
    theta0 = np.zeros(estimator.num_parameters)
    start = time.perf_counter()
    history = ensemble.train(theta0, num_epochs=epochs)
    return history, time.perf_counter() - start


def _histories_bit_exact(reference, candidate) -> bool:
    if len(reference.records) != len(candidate.records):
        return False
    for expected, actual in zip(reference.records, candidate.records):
        if (
            actual.loss != expected.loss
            or not np.array_equal(actual.parameters, expected.parameters)
            or actual.sim_time_hours != expected.sim_time_hours
            or actual.weights != expected.weights
        ):
            return False
    return (
        candidate.total_updates == reference.total_updates
        and candidate.total_jobs == reference.total_jobs
        and candidate.metadata["utilization"] == reference.metadata["utilization"]
    )


def run_parallel_ensemble(epochs: int) -> dict:
    """10-device fleet epochs: sequential vs 4 worker processes."""
    cpus = os.cpu_count() or 1
    sequential_history, sequential_seconds = _train_once(0, epochs)
    parallel_history, parallel_seconds = _train_once(PARALLEL_WORKERS, epochs)

    if cpus >= 4:
        floor = MIN_PARALLEL_SPEEDUP_4_CORES
    elif cpus >= 2:
        floor = MIN_PARALLEL_SPEEDUP_2_CORES
    else:
        floor = None
    return {
        "config": {
            "devices": len(sequential_history.device_names),
            "shots": FLEET_SHOTS,
            "ansatz_layers": ANSATZ_LAYERS,
            "epochs": epochs,
            "jobs": sequential_history.total_jobs,
            "parallel_workers": PARALLEL_WORKERS,
            "cpu_count": cpus,
        },
        "sequential_seconds": sequential_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup_parallel_vs_sequential": sequential_seconds / parallel_seconds,
        "histories_bit_exact": _histories_bit_exact(
            sequential_history, parallel_history
        ),
        "speedup_floor": floor,
        "floor_enforced": floor is not None,
    }


def _peak_bytes(fn) -> tuple[float, float]:
    """(peak traced bytes, wall seconds) of one call."""
    tracemalloc.start()
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return float(peak), elapsed


def run_tiled_sweep() -> dict:
    """20-qubit sweep: untiled complex128 vs tiled complex64 memory + parity."""
    template = hardware_efficient_ansatz(SWEEP_QUBITS, num_layers=1, measure=False)
    program = compile_circuit(template)
    plan = parameter_plan(template, program)
    rng = np.random.default_rng(20260807)
    theta = rng.uniform(
        -np.pi, np.pi, (SWEEP_POINTS, len(template.ordered_parameters()))
    )
    slots = plan_slot_values(plan, theta)

    #: Three full complex64 stacks — the tiled single-precision pass fits
    #: (one output stack + two tile-row buffers); the untiled complex128
    #: pass (two full double-precision stacks plus the phase stack) cannot.
    budget_bytes = 3 * SWEEP_POINTS * (2**SWEEP_QUBITS) * 8

    reference: dict = {}

    def untiled():
        reference["states"] = execute_program(program, slots)

    untiled_peak, untiled_seconds = _peak_bytes(untiled)

    tiled: dict = {}

    def tiled_c64():
        tiled["states"] = execute_program(
            program, slots, dtype=np.complex64, tile=SWEEP_TILE
        )

    tiled_peak, tiled_seconds = _peak_bytes(tiled_c64)

    tiled_c128 = execute_program(program, slots, tile=SWEEP_TILE)
    max_tiled_delta = float(np.max(np.abs(reference["states"] - tiled_c128)))
    max_c64_delta = float(np.max(np.abs(reference["states"] - tiled["states"])))
    del tiled_c128

    return {
        "config": {
            "num_qubits": SWEEP_QUBITS,
            "sweep_points": SWEEP_POINTS,
            "tile": SWEEP_TILE,
            "memory_budget_mib": budget_bytes / 2**20,
        },
        "untiled_c128_peak_mib": untiled_peak / 2**20,
        "tiled_c64_peak_mib": tiled_peak / 2**20,
        "untiled_c128_seconds": untiled_seconds,
        "tiled_c64_seconds": tiled_seconds,
        "untiled_exceeds_budget": untiled_peak > budget_bytes,
        "tiled_fits_budget": tiled_peak <= budget_bytes,
        "max_tiled_c128_delta": max_tiled_delta,
        "max_tiled_c64_delta": max_c64_delta,
    }


def run_parallel_benchmark(epochs: int = EPOCHS) -> dict:
    return {
        "benchmark": "parallel",
        "parallel_ensemble": run_parallel_ensemble(epochs),
        "tiled_sweep": run_tiled_sweep(),
    }


def check_and_record(result: dict) -> None:
    """Persist the result and enforce the acceptance criteria.

    Shared by the pytest entry point and the CLI so CI fails loudly on a
    parity break or a speedup regression no matter how it runs this file.
    """
    write_bench_json(BENCH_PATH, result)
    ensemble = result["parallel_ensemble"]
    sweep = result["tiled_sweep"]

    assert ensemble["histories_bit_exact"], (
        "parallel training diverged from the sequential history"
    )
    if ensemble["floor_enforced"]:
        assert (
            ensemble["speedup_parallel_vs_sequential"] >= ensemble["speedup_floor"]
        ), (
            f"parallel ensemble regressed below {ensemble['speedup_floor']}x "
            f"on {ensemble['config']['cpu_count']} cores: "
            f"{ensemble['speedup_parallel_vs_sequential']:.2f}x"
        )
    assert sweep["untiled_exceeds_budget"], (
        "untiled complex128 sweep unexpectedly fit the memory budget — "
        "tighten the budget so the tiled win stays observable"
    )
    assert sweep["tiled_fits_budget"], (
        f"tiled complex64 sweep exceeded the memory budget: "
        f"{sweep['tiled_c64_peak_mib']:.0f} MiB > "
        f"{sweep['config']['memory_budget_mib']:.0f} MiB"
    )
    assert sweep["max_tiled_c128_delta"] <= MAX_TILED_DELTA, (
        f"tiled parity broken: {sweep['max_tiled_c128_delta']:.3e}"
    )
    assert sweep["max_tiled_c64_delta"] <= MAX_COMPLEX64_DELTA, (
        f"complex64 parity broken: {sweep['max_tiled_c64_delta']:.3e}"
    )


def _report(result: dict) -> None:
    ensemble = result["parallel_ensemble"]
    sweep = result["tiled_sweep"]
    floor = (
        f"floor {ensemble['speedup_floor']}x"
        if ensemble["floor_enforced"]
        else "floor not enforced (single core)"
    )
    print("\n=== Parallel: 10-device ensemble epochs (4 worker processes) ===")
    print(
        f"sequential {ensemble['sequential_seconds']:.2f} s | "
        f"parallel {ensemble['parallel_seconds']:.2f} s | "
        f"speedup {ensemble['speedup_parallel_vs_sequential']:.2f}x | "
        f"bit-exact: {ensemble['histories_bit_exact']} | "
        f"{floor} ({ensemble['config']['cpu_count']} cores)"
    )
    print("=== Parallel: tiled 20-qubit sweep (6 points) ===")
    print(
        f"untiled c128 {sweep['untiled_c128_peak_mib']:.0f} MiB "
        f"{sweep['untiled_c128_seconds']:.1f} s | "
        f"tiled c64 {sweep['tiled_c64_peak_mib']:.0f} MiB "
        f"{sweep['tiled_c64_seconds']:.1f} s | "
        f"budget {sweep['config']['memory_budget_mib']:.0f} MiB | "
        f"tiled delta {sweep['max_tiled_c128_delta']:.1e} | "
        f"c64 delta {sweep['max_tiled_c64_delta']:.1e}"
    )


def test_parallel_speedup():
    result = run_parallel_benchmark()
    _report(result)
    check_and_record(result)


if __name__ == "__main__":
    bench_main(
        lambda smoke: run_parallel_benchmark(SMOKE_EPOCHS if smoke else EPOCHS),
        check_and_record,
        report=_report,
    )
