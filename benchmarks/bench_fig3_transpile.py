"""Figure 3 — topology-dependent transpilation of the same circuit."""

from repro.experiments.fig3_transpile import fig3_transpilation, render_fig3


def test_fig3_transpilation(benchmark):
    rows = benchmark(fig3_transpilation)
    assert {row.device for row in rows} == {"Belem", "x2", "Manila"}
    # the fully connected device never needs SWAPs; the T-shape does
    by_device = {(r.device, r.circuit): r for r in rows}
    assert by_device[("x2", "fig3_demo")].num_swaps == 0
    assert by_device[("Belem", "fig3_demo")].num_swaps >= 1
    print("\n=== Figure 3: transpilation cost per topology ===")
    print(render_fig3(rows))
