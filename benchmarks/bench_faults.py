"""Chaos benchmark — fault injection, graceful degradation, and recovery.

Three resilience workloads, recorded in ``BENCH_faults.json`` at the
repository root so the fault-tolerance guarantees are tracked across PRs:

* **graceful degradation** — a 4-device VQE fleet trained under a chaos plan
  that kills one device permanently at t=0 and injects a >=10% transient
  job-failure rate everywhere else.  Training must complete on the
  survivors, retire exactly the dead device, and land within a pinned loss
  gap of the fault-free baseline.
* **determinism** — chaos is seeded: two runs under the same plan must agree
  bit for bit (losses, fault counters, fleet events, breaker summaries),
  and a *disabled* ``FaultPlan()`` must reproduce the fault-free history
  exactly (fault decisions draw from injector streams only, so the gate
  costs zero RNG).
* **crash recovery** — a parallel run whose worker 0 is killed mid-epoch
  (``os._exit`` before the outcome ships) must respawn, replay its job log,
  and still match the sequential fault-free history bit for bit.
"""

from __future__ import annotations

import numpy as np

from _common import bench_json_path, bench_main, write_bench_json

from repro.core import EQCConfig, EQCEnsemble
from repro.faults import FaultPlan, OutageWindow, WorkerCrash
from repro.hamiltonian.expectation import EnergyEstimator
from repro.vqa.vqe import heisenberg_vqe_problem

DEVICES = ("x2", "Belem", "Bogota", "Quito")
DEAD_DEVICE = "Bogota"
SHOTS = 256
SEED = 1
EPOCHS = 3
SMOKE_EPOCHS = 2
TRANSIENT_RATE = 0.15
BENCH_PATH = bench_json_path("faults")

#: Pinned CI floors.
MIN_TRANSIENT_RATE = 0.10
MAX_LOSS_GAP = 0.5

CHAOS_PLAN = FaultPlan(
    seed=11,
    transient_failure_rate=TRANSIENT_RATE,
    outages=(OutageWindow(device=DEAD_DEVICE, start=0.0, permanent=True),),
)

CRASH_PLAN = FaultPlan(worker_crashes=(WorkerCrash(0, 3),))


def _train_once(epochs: int, **config_kwargs):
    problem = heisenberg_vqe_problem()
    estimator = EnergyEstimator(problem.ansatz, problem.hamiltonian)
    config = EQCConfig(
        device_names=DEVICES, shots=SHOTS, seed=SEED, **config_kwargs
    )
    ensemble = EQCEnsemble.for_estimator(estimator, config)
    theta0 = np.zeros(estimator.num_parameters)
    return ensemble.train(theta0, num_epochs=epochs)


def _histories_bit_exact(reference, candidate) -> bool:
    if len(reference.records) != len(candidate.records):
        return False
    for expected, actual in zip(reference.records, candidate.records):
        if (
            actual.loss != expected.loss
            or not np.array_equal(actual.parameters, expected.parameters)
            or actual.sim_time_hours != expected.sim_time_hours
            or actual.weights != expected.weights
        ):
            return False
    return True


def run_degradation(epochs: int) -> dict:
    """Chaos fleet vs fault-free baseline: survivors must finish the job."""
    baseline = _train_once(epochs)
    chaos = _train_once(epochs, fault_plan=CHAOS_PLAN)
    loss_gap = abs(chaos.records[-1].loss - baseline.records[-1].loss)
    return {
        "config": {
            "devices": list(DEVICES),
            "dead_device": DEAD_DEVICE,
            "transient_failure_rate": TRANSIENT_RATE,
            "shots": SHOTS,
            "epochs": epochs,
        },
        "baseline_final_loss": float(baseline.records[-1].loss),
        "chaos_final_loss": float(chaos.records[-1].loss),
        "loss_gap": float(loss_gap),
        "live_devices": chaos.metadata["live_devices"],
        "fault_stats": chaos.metadata["fault_stats"],
        "provider_faults": chaos.metadata["provider_faults"],
        "fleet_events": chaos.metadata["fleet_events"],
        "epochs_completed": len(chaos.records),
    }


def run_determinism(epochs: int) -> dict:
    """Seeded chaos repeats exactly; a disabled plan costs zero RNG."""
    first = _train_once(epochs, fault_plan=CHAOS_PLAN)
    second = _train_once(epochs, fault_plan=CHAOS_PLAN)
    chaos_deterministic = (
        _histories_bit_exact(first, second)
        and first.metadata["provider_faults"] == second.metadata["provider_faults"]
        and first.metadata["fleet_events"] == second.metadata["fleet_events"]
        and first.metadata["breakers"] == second.metadata["breakers"]
    )
    plain = _train_once(epochs)
    gated = _train_once(epochs, fault_plan=FaultPlan())
    return {
        "chaos_deterministic": chaos_deterministic,
        "disabled_plan_bit_exact": _histories_bit_exact(plain, gated),
    }


def run_crash_recovery(epochs: int) -> dict:
    """Worker 0 dies after 3 jobs; recovery must be invisible in the history."""
    reference = _train_once(epochs)
    recovered = _train_once(
        epochs, parallel_workers=2, fault_plan=CRASH_PLAN
    )
    return {
        "crash_events": recovered.metadata.get("worker_crashes", []),
        "histories_bit_exact": _histories_bit_exact(reference, recovered)
        and recovered.metadata["utilization"] == reference.metadata["utilization"],
    }


def run_faults_benchmark(epochs: int = EPOCHS) -> dict:
    return {
        "benchmark": "faults",
        "degradation": run_degradation(epochs),
        "determinism": run_determinism(epochs),
        "crash_recovery": run_crash_recovery(epochs),
    }


def check_and_record(result: dict) -> None:
    """Persist the result and enforce the acceptance criteria.

    Shared by the pytest entry point and the CLI so CI fails loudly on a
    resilience regression no matter how it runs this file.
    """
    write_bench_json(BENCH_PATH, result)
    degradation = result["degradation"]
    determinism = result["determinism"]
    crash = result["crash_recovery"]

    assert degradation["epochs_completed"] == degradation["config"]["epochs"], (
        "chaos training did not complete every epoch"
    )
    assert degradation["config"]["transient_failure_rate"] >= MIN_TRANSIENT_RATE, (
        "the chaos plan fell below the 10% transient-failure floor"
    )
    survivors = [d for d in DEVICES if d != DEAD_DEVICE]
    assert degradation["live_devices"] == survivors, (
        f"expected the fleet to shrink to {survivors}, "
        f"got {degradation['live_devices']}"
    )
    assert degradation["fault_stats"]["retired_devices"] == 1
    assert degradation["provider_faults"]["transient_failures"] >= 1, (
        "the chaos run never observed a transient failure"
    )
    assert degradation["loss_gap"] <= MAX_LOSS_GAP, (
        f"degraded training diverged from the fault-free baseline: "
        f"loss gap {degradation['loss_gap']:.4f} > {MAX_LOSS_GAP}"
    )
    assert determinism["chaos_deterministic"], (
        "two chaos runs under the same plan seed diverged"
    )
    assert determinism["disabled_plan_bit_exact"], (
        "a disabled FaultPlan shifted the fault-free history"
    )
    assert crash["histories_bit_exact"], (
        "crash recovery diverged from the sequential history"
    )
    assert crash["crash_events"] == [{"worker_id": 0, "after_jobs": 3}], (
        f"expected exactly one injected crash, got {crash['crash_events']}"
    )


def _report(result: dict) -> None:
    degradation = result["degradation"]
    determinism = result["determinism"]
    crash = result["crash_recovery"]
    stats = degradation["fault_stats"]
    faults = degradation["provider_faults"]
    print(
        f"\n=== Faults: graceful degradation "
        f"({len(DEVICES)} devices, {DEAD_DEVICE} dead at t=0, "
        f"{degradation['config']['transient_failure_rate']:.0%} transient) ==="
    )
    print(
        f"baseline loss {degradation['baseline_final_loss']:.6f} | "
        f"chaos loss {degradation['chaos_final_loss']:.6f} | "
        f"gap {degradation['loss_gap']:.6f} (max {MAX_LOSS_GAP}) | "
        f"survivors {degradation['live_devices']}"
    )
    print(
        f"transient failures {faults['transient_failures']} | "
        f"retries {faults['retries']} | "
        f"job failures {faults['job_failures']} | "
        f"retired {stats['retired_devices']}"
    )
    print("=== Faults: determinism ===")
    print(
        f"chaos repeatable: {determinism['chaos_deterministic']} | "
        f"disabled plan bit-exact: {determinism['disabled_plan_bit_exact']}"
    )
    print("=== Faults: worker-crash recovery ===")
    print(
        f"crash events {crash['crash_events']} | "
        f"bit-exact after respawn: {crash['histories_bit_exact']}"
    )


def test_fault_resilience():
    result = run_faults_benchmark()
    _report(result)
    check_and_record(result)


if __name__ == "__main__":
    bench_main(
        lambda smoke: run_faults_benchmark(SMOKE_EPOCHS if smoke else EPOCHS),
        check_and_record,
        report=_report,
    )
