"""Ablation — asynchronous (ASGD) EQC vs a barrier-synchronized ensemble.

Not a paper figure: this probes the design choice of asynchronous updates.
The synchronous variant waits for the slowest device every cycle, so its
wall-clock throughput collapses to the slowest member while the asynchronous
master keeps every device saturated.
"""

from repro.analysis.reporting import format_table
from repro.experiments.ablations import run_async_vs_sync


def test_ablation_async_vs_sync(benchmark, bench_scale):
    rows = benchmark.pedantic(
        run_async_vs_sync,
        kwargs={
            "epochs": 40,
            "device_names": ("x2", "Belem", "Quito", "Bogota", "Casablanca", "Toronto"),
            "shots": bench_scale["shots"] // 2,
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    print("\n=== Ablation: asynchronous vs synchronous ensemble ===")
    print(format_table(rows))

    by_mode = {row["mode"]: row for row in rows}
    async_row = by_mode["async"]
    sync_row = next(row for mode, row in by_mode.items() if mode.startswith("sync"))
    # asynchrony buys wall-clock throughput at equal epoch counts
    assert async_row["epochs_per_hour"] > sync_row["epochs_per_hour"]
    # both optimize to a similar energy
    assert abs(async_row["final_energy"] - sync_row["final_energy"]) < 1.5
