"""Figure 9 — the weighted VQE sweep: no weights vs three weight bands.

Regenerates the Fig. 9 comparison: converged energy, error vs the reference
solution and convergence epoch for the unweighted ensemble and the three
weight bands evaluated in the paper.
"""

from repro.experiments.fig9_weighted_vqe import (
    WeightedVQEConfig,
    render_fig9,
    run_fig9_weighted_vqe,
)


def test_fig9_weighted_vqe(benchmark, bench_scale):
    config = WeightedVQEConfig(
        epochs=bench_scale["vqe_epochs"],
        shots=bench_scale["shots"],
        seed=7,
    )
    result = benchmark.pedantic(run_fig9_weighted_vqe, args=(config,), rounds=1, iterations=1)

    print("\n=== Figure 9: weighted QPU results ===")
    print(render_fig9(result))

    reference = result.reference_energy
    errors = {label: history.error_vs(reference) for label, history in result.runs.items()}
    convergence = {
        label: history.convergence_epoch(reference) for label, history in result.runs.items()
    }
    print("errors:", {k: round(v, 4) for k, v in errors.items()})
    print("convergence:", convergence)

    # every configuration converges near the reference solution
    assert all(error < 0.08 for error in errors.values())
    # every weighted configuration that converged did so within the epoch budget
    converged = [label for label, epoch in convergence.items() if epoch is not None]
    assert len(converged) >= 3
