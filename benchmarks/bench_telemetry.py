"""Telemetry benchmark — disabled-mode overhead floor and trace validity.

Two properties gate the ``telemetry`` subsystem:

* **disabled overhead** — with collection off, every instrumentation site
  costs one branch on the outermost hot call.  The engine micro workload
  (the 5-qubit HEA parameter-shift sweep of ``bench_engine_batch``) run
  through the instrumented :func:`~repro.engine.executor.execute_program`
  must stay within 2% of an uninstrumented replica of the same code path.
* **enabled-mode validity** — an instrumented mini-experiment (EQC training
  under background tenant contention) must produce a Chrome trace that
  passes :func:`~repro.telemetry.validate_chrome_trace`, covering engine,
  scheduler, and EQC spans, and must leave the seeded training history
  bit-exact against a telemetry-off run.

Results land in ``BENCH_telemetry.json`` at the repository root.
``--smoke`` runs a reduced-but-complete version for CI.
"""

from __future__ import annotations

import time

import numpy as np

from _common import bench_json_path, bench_main, write_bench_json

from repro import EQCConfig, EQCEnsemble, EnergyObjective
from repro.circuit import hardware_efficient_ansatz
from repro.engine import compile_circuit, execute_program
from repro.engine.executor import _execute_block, _resolve_dtype
from repro.telemetry import (
    TELEMETRY,
    run_report,
    telemetry_session,
    validate_chrome_trace,
)
from repro.vqa import heisenberg_vqe_problem
from repro.vqa.gradient import shifted_theta_matrix

NUM_QUBITS = 5
NUM_PARAMETERS = 8
CALLS_PER_SAMPLE = 60
SAMPLES = 15
SAMPLES_SMOKE = 7
MAX_DISABLED_OVERHEAD = 1.02
REQUIRED_CATEGORIES = {"engine", "sched", "eqc"}
BENCH_PATH = bench_json_path("telemetry")


def _baseline_execute(program, thetas) -> np.ndarray:
    """Pre-telemetry ``execute_program`` (untiled path), branch-for-branch.

    Identical input validation and dispatch into the shared
    :func:`_execute_block` kernel, with the telemetry enabled-check removed —
    the only difference the overhead ratio is allowed to measure.
    """
    thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
    if thetas.shape[1] != program.num_slots:
        raise ValueError("slot count mismatch")
    return _execute_block(program, thetas, _resolve_dtype(None))


def measure_disabled_overhead(samples: int) -> dict:
    """Best-of-N timing of instrumented-but-disabled vs uninstrumented.

    Samples for the two variants are interleaved so slow machine moments
    penalize both equally; each sample times ``CALLS_PER_SAMPLE`` executions
    of the full micro sweep.
    """
    template = hardware_efficient_ansatz(NUM_QUBITS)
    program = compile_circuit(template.without_measurements())
    rng = np.random.default_rng(20260807)
    theta = rng.uniform(-np.pi, np.pi, len(template.ordered_parameters()))
    thetas = shifted_theta_matrix(theta, list(range(NUM_PARAMETERS)))

    was_enabled = TELEMETRY.enabled
    TELEMETRY.disable()
    try:
        # Parity guard: the replica must compute the same states.
        delta = float(
            np.max(np.abs(execute_program(program, thetas) - _baseline_execute(program, thetas)))
        )
        best_baseline = float("inf")
        best_disabled = float("inf")
        for _ in range(samples):
            start = time.perf_counter()
            for _ in range(CALLS_PER_SAMPLE):
                _baseline_execute(program, thetas)
            best_baseline = min(best_baseline, time.perf_counter() - start)
            start = time.perf_counter()
            for _ in range(CALLS_PER_SAMPLE):
                execute_program(program, thetas)
            best_disabled = min(best_disabled, time.perf_counter() - start)
        with telemetry_session():
            best_enabled = float("inf")
            for _ in range(max(2, samples // 3)):
                start = time.perf_counter()
                for _ in range(CALLS_PER_SAMPLE):
                    execute_program(program, thetas)
                best_enabled = min(best_enabled, time.perf_counter() - start)
    finally:
        TELEMETRY.enabled = was_enabled

    return {
        "calls_per_sample": CALLS_PER_SAMPLE,
        "samples": samples,
        "parity_max_delta": delta,
        "baseline_seconds": best_baseline,
        "disabled_seconds": best_disabled,
        "enabled_seconds": best_enabled,
        "disabled_overhead_ratio": best_disabled / best_baseline,
        "enabled_overhead_ratio": best_enabled / best_baseline,
    }


def run_instrumented_experiment(num_epochs: int, shots: int) -> dict:
    """One EQC run under contention with telemetry on; validates the trace."""
    problem = heisenberg_vqe_problem()
    theta = np.linspace(0.1, 1.6, problem.num_parameters)

    def train() -> float:
        config = EQCConfig(
            device_names=("x2", "Belem"),
            shots=shots,
            seed=11,
            scheduling_policy="fifo",
            background_tenants=25,
        )
        ensemble = EQCEnsemble(EnergyObjective(problem.estimator), config)
        history = ensemble.train(theta, num_epochs=num_epochs)
        return float(history.records[-1].loss)

    loss_off = train()
    with telemetry_session():
        loss_on = train()
        report = run_report()
        trace = TELEMETRY.tracer.to_chrome()
    summary = validate_chrome_trace(trace)
    return {
        "num_epochs": num_epochs,
        "shots": shots,
        "loss_telemetry_off": loss_off,
        "loss_telemetry_on": loss_on,
        "bit_exact": loss_off == loss_on,
        "trace_events": summary["events"],
        "trace_tracks": summary["tracks"],
        "trace_categories": sorted(summary["categories"]),
        "counters": report["counters"],
        "dropped_trace_events": report["dropped_trace_events"],
    }


def run_telemetry_benchmark(smoke: bool = False) -> dict:
    samples = SAMPLES_SMOKE if smoke else SAMPLES
    return {
        "benchmark": "telemetry",
        "config": {"smoke": smoke, "qubits": NUM_QUBITS, "sweep_points": 2 * NUM_PARAMETERS},
        "overhead": measure_disabled_overhead(samples),
        "experiment": run_instrumented_experiment(num_epochs=1, shots=128),
    }


def check_and_record(result: dict) -> None:
    """Persist the result and enforce the acceptance criteria."""
    write_bench_json(BENCH_PATH, result)
    overhead = result["overhead"]
    assert overhead["parity_max_delta"] == 0.0, (
        f"instrumented engine diverged from the uninstrumented replica: "
        f"{overhead['parity_max_delta']}"
    )
    ratio = overhead["disabled_overhead_ratio"]
    assert ratio < MAX_DISABLED_OVERHEAD, (
        f"disabled-mode telemetry overhead exceeds "
        f"{(MAX_DISABLED_OVERHEAD - 1) * 100:.0f}%: ratio {ratio:.4f}"
    )
    experiment = result["experiment"]
    assert experiment["bit_exact"], (
        "telemetry-on training history diverged from telemetry-off: "
        f"{experiment['loss_telemetry_on']} vs {experiment['loss_telemetry_off']}"
    )
    missing = REQUIRED_CATEGORIES - set(experiment["trace_categories"])
    assert not missing, f"trace is missing span categories: {sorted(missing)}"
    assert experiment["dropped_trace_events"] == 0


def _report(result: dict) -> None:
    overhead = result["overhead"]
    experiment = result["experiment"]
    print("\n=== Telemetry: disabled overhead and instrumented experiment ===")
    print(
        f"disabled overhead: {100 * (overhead['disabled_overhead_ratio'] - 1):+.2f}% "
        f"(floor +{(MAX_DISABLED_OVERHEAD - 1) * 100:.0f}%) | "
        f"enabled: {100 * (overhead['enabled_overhead_ratio'] - 1):+.2f}%"
    )
    print(
        f"experiment: bit_exact={experiment['bit_exact']} | "
        f"{experiment['trace_events']} trace events on "
        f"{experiment['trace_tracks']} tracks | "
        f"categories {experiment['trace_categories']}"
    )


def test_telemetry_benchmark():
    result = run_telemetry_benchmark(smoke=True)
    _report(result)
    check_and_record(result)


if __name__ == "__main__":
    bench_main(
        lambda smoke: run_telemetry_benchmark(smoke),
        check_and_record,
        report=_report,
    )
